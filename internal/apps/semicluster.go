package apps

import (
	"sort"

	"hetgraph/internal/graph"
	"hetgraph/internal/machine"
)

// SemiCluster is one semi-cluster: a small set of members and its score.
// The score follows the Pregel formulation: S_c = (I_c - f_B*B_c) / (V_c
// choose 2), with I_c the weight of edges inside the cluster and B_c the
// weight of boundary edges.
type SemiCluster struct {
	Members []graph.VertexID // sorted ascending
	Score   float32
}

// contains reports membership (members are sorted).
func (c SemiCluster) contains(v graph.VertexID) bool {
	i := sort.Search(len(c.Members), func(i int) bool { return c.Members[i] >= v })
	return i < len(c.Members) && c.Members[i] == v
}

// key returns a canonical identity for deduplication.
func (c SemiCluster) key() string {
	b := make([]byte, 0, len(c.Members)*4)
	for _, m := range c.Members {
		b = append(b, byte(m), byte(m>>8), byte(m>>16), byte(m>>24))
	}
	return string(b)
}

// SCMsg is the Semi-Clustering message type: a list of semi-clusters. It is
// not a basic SSE type, so the framework uses the generic (non-SIMD) path
// for this application, as §V-D notes.
type SCMsg []SemiCluster

// SemiClustering finds overlapping groups of people who interact
// frequently (§V-B), on an undirected graph represented as a directed graph
// with duplicated edges. Each vertex maintains at most MaxClusters
// semi-clusters of at most MaxMembers members, sorted by score.
type SemiClustering struct {
	g *graph.CSR
	// MaxClusters bounds the cluster list per vertex and per message.
	MaxClusters int
	// MaxMembers bounds the semi-cluster size.
	MaxMembers int
	// BoundaryFactor is f_B in the score formula.
	BoundaryFactor float32
	// Clusters holds each vertex's current semi-cluster list, sorted by
	// descending score.
	Clusters []SCMsg
	changed  []bool
}

// NewSemiClustering creates the app with the given bounds.
func NewSemiClustering(maxClusters, maxMembers int, boundaryFactor float32) *SemiClustering {
	if maxClusters < 1 {
		maxClusters = 1
	}
	if maxMembers < 2 {
		maxMembers = 2
	}
	return &SemiClustering{MaxClusters: maxClusters, MaxMembers: maxMembers, BoundaryFactor: boundaryFactor}
}

// Profile implements AppGeneric.
func (s *SemiClustering) Profile() machine.AppProfile { return machine.SCProfile }

// Init implements AppGeneric: every vertex starts with the singleton
// cluster {v} and is active.
func (s *SemiClustering) Init(g *graph.CSR) []graph.VertexID {
	s.g = g
	n := g.NumVertices()
	s.Clusters = make([]SCMsg, n)
	s.changed = make([]bool, n)
	active := make([]graph.VertexID, n)
	for v := 0; v < n; v++ {
		s.Clusters[v] = SCMsg{{Members: []graph.VertexID{graph.VertexID(v)}, Score: 0}}
		active[v] = graph.VertexID(v)
	}
	return active
}

// Generate implements AppGeneric: send the top-score clusters to all
// neighbors.
func (s *SemiClustering) Generate(v graph.VertexID, emit func(graph.VertexID, SCMsg)) {
	top := s.Clusters[v]
	if len(top) > s.MaxClusters {
		top = top[:s.MaxClusters]
	}
	for _, d := range s.g.Neighbors(v) {
		emit(d, top)
	}
}

// Combine implements AppGeneric: merging two cluster lists keeps the
// highest-scoring distinct clusters — the remote-buffer combination.
func (s *SemiClustering) Combine(a, b SCMsg) SCMsg {
	return s.mergeTop(append(append(SCMsg{}, a...), b...))
}

// Process implements AppGeneric: reduce all received lists into one.
func (s *SemiClustering) Process(v graph.VertexID, msgs []SCMsg) SCMsg {
	var all SCMsg
	for _, m := range msgs {
		all = append(all, m...)
	}
	return s.mergeTop(all)
}

// Update implements AppGeneric: extend received clusters with v where
// possible, merge with v's own list, keep the top; stay active only if the
// list changed (the fixed-point termination).
func (s *SemiClustering) Update(v graph.VertexID, received SCMsg) bool {
	cand := append(SCMsg{}, s.Clusters[v]...)
	for _, c := range received {
		cand = append(cand, c)
		if !c.contains(v) && len(c.Members) < s.MaxMembers {
			ext := s.extend(c, v)
			cand = append(cand, ext)
		}
	}
	merged := s.mergeTop(cand)
	if equalClusterLists(merged, s.Clusters[v]) {
		return false
	}
	s.Clusters[v] = merged
	return true
}

// extend returns cluster c with v added and the score recomputed.
func (s *SemiClustering) extend(c SemiCluster, v graph.VertexID) SemiCluster {
	members := make([]graph.VertexID, 0, len(c.Members)+1)
	members = append(members, c.Members...)
	members = append(members, v)
	sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
	ext := SemiCluster{Members: members}
	ext.Score = s.score(members)
	return ext
}

// score computes S_c from the real graph: internal edge weight I (each
// undirected edge appears as two directed ones, so halve), boundary weight
// B, normalized by the pair count.
func (s *SemiClustering) score(members []graph.VertexID) float32 {
	if len(members) < 2 {
		return 0
	}
	inSet := func(v graph.VertexID) bool {
		i := sort.Search(len(members), func(i int) bool { return members[i] >= v })
		return i < len(members) && members[i] == v
	}
	var internal2, boundary float32
	for _, u := range members {
		ws := s.g.EdgeWeights(u)
		for i, d := range s.g.Neighbors(u) {
			w := float32(1)
			if ws != nil {
				w = ws[i]
			}
			if inSet(d) {
				internal2 += w
			} else {
				boundary += w
			}
		}
	}
	pairs := float32(len(members)*(len(members)-1)) / 2
	return (internal2/2 - s.BoundaryFactor*boundary) / pairs
}

// mergeTop deduplicates and keeps the MaxClusters best by score (ties by
// canonical key, for determinism).
func (s *SemiClustering) mergeTop(all SCMsg) SCMsg {
	seen := make(map[string]int, len(all))
	out := make(SCMsg, 0, len(all))
	for _, c := range all {
		k := c.key()
		if i, ok := seen[k]; ok {
			if c.Score > out[i].Score {
				out[i] = c
			}
			continue
		}
		seen[k] = len(out)
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].key() < out[j].key()
	})
	if len(out) > s.MaxClusters {
		out = out[:s.MaxClusters]
	}
	return out
}

// equalClusterLists compares two sorted cluster lists.
func equalClusterLists(a, b SCMsg) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Score != b[i].Score || len(a[i].Members) != len(b[i].Members) {
			return false
		}
		for j := range a[i].Members {
			if a[i].Members[j] != b[i].Members[j] {
				return false
			}
		}
	}
	return true
}
