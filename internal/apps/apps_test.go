package apps

import (
	"math"
	"testing"
	"testing/quick"

	"hetgraph/internal/graph"
	"hetgraph/internal/vec"
)

func TestPageRankInitAndGenerate(t *testing.T) {
	g := graph.PaperExample()
	app := NewPageRank()
	active := app.Init(g)
	if len(active) != 16 {
		t.Fatalf("active = %d, want all 16", len(active))
	}
	if !app.FixedActiveSet() {
		t.Fatal("PageRank must declare a fixed active set")
	}
	// Vertex 9 has out-degree 4: each message carries rank/4.
	var got []float32
	app.Generate(9, func(dst graph.VertexID, v float32) { got = append(got, v) })
	if len(got) != 4 {
		t.Fatalf("generated %d messages", len(got))
	}
	for _, v := range got {
		if v != 0.25 {
			t.Fatalf("share = %v, want 0.25", v)
		}
	}
	// Update refreshes rank and share.
	app.Update(9, 2.0)
	want := float32(0.15 + 0.85*2.0)
	if app.Ranks[9] != want {
		t.Fatalf("rank = %v, want %v", app.Ranks[9], want)
	}
	app.Generate(9, func(_ graph.VertexID, v float32) {
		if v != want/4 {
			t.Fatalf("post-update share = %v, want %v", v, want/4)
		}
	})
	if app.Identity() != 0 || app.ReduceScalar(2, 3) != 5 {
		t.Error("reduction primitives wrong")
	}
}

func TestBFSUpdateSemantics(t *testing.T) {
	g := graph.PaperExample()
	app := NewBFS(1)
	active := app.Init(g)
	if len(active) != 1 || active[0] != 1 {
		t.Fatalf("initial active = %v", active)
	}
	if app.Levels[1] != 0 {
		t.Fatal("source level not 0")
	}
	if !app.Update(5, 1) {
		t.Fatal("first visit must activate")
	}
	if app.Update(5, 2) {
		t.Fatal("revisit must not activate")
	}
	if app.Levels[5] != 1 {
		t.Fatalf("level = %d", app.Levels[5])
	}
	if app.ReduceScalar(3, 2) != 2 || app.ReduceScalar(2, 3) != 2 {
		t.Error("BFS reduce must be min")
	}
	if !math.IsInf(float64(app.Identity()), 1) {
		t.Error("identity must be +Inf")
	}
}

func TestSSSPRequiresWeights(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("SSSP accepted unweighted graph")
		}
	}()
	NewSSSP(0).Init(graph.PaperExample())
}

func TestSSSPGenerateAddsWeights(t *testing.T) {
	b := graph.NewBuilder(3, true)
	b.AddEdge(0, 1, 2.5)
	b.AddEdge(0, 2, 4.0)
	g, _ := b.Build()
	app := NewSSSP(0)
	app.Init(g)
	got := map[graph.VertexID]float32{}
	app.Generate(0, func(dst graph.VertexID, v float32) { got[dst] = v })
	if got[1] != 2.5 || got[2] != 4.0 {
		t.Fatalf("messages = %v", got)
	}
	if !app.Update(1, 2.5) {
		t.Fatal("shorter distance must activate")
	}
	if app.Update(1, 3.0) {
		t.Fatal("longer distance must not activate")
	}
}

func TestTopoSortInitAndCycleDetection(t *testing.T) {
	// Chain 0 -> 1 -> 2 plus isolated 3.
	b := graph.NewBuilder(4, false)
	b.AddEdge(0, 1, 0)
	b.AddEdge(1, 2, 0)
	g, _ := b.Build()
	app := NewTopoSort()
	active := app.Init(g)
	if len(active) != 2 { // 0 and 3 have in-degree 0
		t.Fatalf("initial active = %v", active)
	}
	if app.Order[0] < 0 || app.Order[3] < 0 {
		t.Fatal("sources not ordered at init")
	}
	if app.Ordered() {
		t.Fatal("Ordered true before completion")
	}
	if !app.Update(1, 1) {
		t.Fatal("in-degree 1 vertex must activate after one message")
	}
	// A cycle leaves vertices unordered.
	b2 := graph.NewBuilder(2, false)
	b2.AddEdge(0, 1, 0)
	b2.AddEdge(1, 0, 0)
	g2, _ := b2.Build()
	app2 := NewTopoSort()
	if got := app2.Init(g2); len(got) != 0 {
		t.Fatal("cycle has no zero in-degree vertex")
	}
	if app2.Ordered() {
		t.Fatal("cyclic graph reported ordered")
	}
}

func TestTopoSortNegativePanic(t *testing.T) {
	b := graph.NewBuilder(2, false)
	b.AddEdge(0, 1, 0)
	g, _ := b.Build()
	app := NewTopoSort()
	app.Init(g)
	app.Update(1, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("over-delivery did not panic")
		}
	}()
	app.Update(1, 1)
}

func TestSemiClusterContainsAndKey(t *testing.T) {
	c := SemiCluster{Members: []graph.VertexID{2, 5, 9}}
	if !c.contains(5) || c.contains(3) {
		t.Error("contains wrong")
	}
	c2 := SemiCluster{Members: []graph.VertexID{2, 5, 9}, Score: 1}
	if c.key() != c2.key() {
		t.Error("same members, different keys")
	}
	c3 := SemiCluster{Members: []graph.VertexID{2, 5}}
	if c.key() == c3.key() {
		t.Error("different members, same key")
	}
}

func TestSemiClusterScore(t *testing.T) {
	// Triangle 0-1-2 all weight 1, plus boundary edge 2-3 weight 1.
	b := graph.NewBuilder(4, true)
	b.AddUndirected(0, 1, 1)
	b.AddUndirected(1, 2, 1)
	b.AddUndirected(0, 2, 1)
	b.AddUndirected(2, 3, 1)
	g, _ := b.Build()
	sc := NewSemiClustering(4, 4, 0.5)
	sc.Init(g)
	// Cluster {0,1,2}: I = 3, B = 1, pairs = 3 -> (3 - 0.5*1)/3.
	got := sc.score([]graph.VertexID{0, 1, 2})
	want := float32((3 - 0.5) / 3)
	if math.Abs(float64(got-want)) > 1e-6 {
		t.Fatalf("score = %v, want %v", got, want)
	}
	if sc.score([]graph.VertexID{0}) != 0 {
		t.Error("singleton score must be 0")
	}
}

func TestSemiClusterMergeTop(t *testing.T) {
	sc := NewSemiClustering(2, 4, 0.2)
	a := SemiCluster{Members: []graph.VertexID{0}, Score: 1}
	bb := SemiCluster{Members: []graph.VertexID{1}, Score: 3}
	c := SemiCluster{Members: []graph.VertexID{2}, Score: 2}
	dup := SemiCluster{Members: []graph.VertexID{1}, Score: 5} // same set, better score
	out := sc.mergeTop(SCMsg{a, bb, c, dup})
	if len(out) != 2 {
		t.Fatalf("kept %d clusters, want 2", len(out))
	}
	if out[0].Score != 5 || out[1].Score != 2 {
		t.Fatalf("merge order wrong: %v", out)
	}
}

func TestSemiClusterBoundsClamped(t *testing.T) {
	sc := NewSemiClustering(0, 1, 0.2)
	if sc.MaxClusters != 1 || sc.MaxMembers != 2 {
		t.Fatalf("bounds not clamped: %d %d", sc.MaxClusters, sc.MaxMembers)
	}
}

func TestSemiClusterUpdateExtends(t *testing.T) {
	b := graph.NewBuilder(3, true)
	b.AddUndirected(0, 1, 1)
	b.AddUndirected(1, 2, 1)
	g, _ := b.Build()
	sc := NewSemiClustering(3, 3, 0.2)
	sc.Init(g)
	// Vertex 1 receives the singleton {0}: it should extend to {0,1}.
	changed := sc.Update(1, SCMsg{{Members: []graph.VertexID{0}, Score: 0}})
	if !changed {
		t.Fatal("update reported no change")
	}
	found := false
	for _, c := range sc.Clusters[1] {
		if len(c.Members) == 2 && c.Members[0] == 0 && c.Members[1] == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("extended cluster missing: %v", sc.Clusters[1])
	}
	// Same message again: no change, inactive.
	if sc.Update(1, SCMsg{{Members: []graph.VertexID{0}, Score: 0}}) {
		t.Fatal("idempotent update reported change")
	}
}

func TestSemiClusterCombineBounded(t *testing.T) {
	sc := NewSemiClustering(2, 4, 0.2)
	var msgs SCMsg
	for i := 0; i < 10; i++ {
		msgs = append(msgs, SemiCluster{Members: []graph.VertexID{graph.VertexID(i)}, Score: float32(i)})
	}
	out := sc.Combine(msgs[:5], msgs[5:])
	if len(out) != 2 {
		t.Fatalf("combine kept %d, want 2", len(out))
	}
	if out[0].Score != 9 || out[1].Score != 8 {
		t.Fatalf("combine kept wrong clusters: %v", out)
	}
}

// property: mergeTop output is sorted by descending score and has no
// duplicate member sets.
func TestQuickMergeTopInvariant(t *testing.T) {
	sc := NewSemiClustering(4, 4, 0.2)
	f := func(raw []uint8) bool {
		var in SCMsg
		for _, r := range raw {
			in = append(in, SemiCluster{
				Members: []graph.VertexID{graph.VertexID(r % 8)},
				Score:   float32(r % 16),
			})
		}
		out := sc.mergeTop(in)
		if len(out) > sc.MaxClusters {
			return false
		}
		seen := map[string]bool{}
		for i, c := range out {
			if i > 0 && out[i-1].Score < c.Score {
				return false
			}
			if seen[c.key()] {
				return false
			}
			seen[c.key()] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestReduceVecImplementations(t *testing.T) {
	arr := vec.MustArrayF32(4, 2)
	copy(arr.Row(0), []float32{1, 5, 3, 7})
	copy(arr.Row(1), []float32{2, 4, 6, 1})
	s := NewSSSP(0)
	s.ReduceVec(arr, 2)
	want := []float32{1, 4, 3, 1}
	for i, w := range want {
		if arr.Row(0)[i] != w {
			t.Fatalf("SSSP ReduceVec lane %d = %v, want %v", i, arr.Row(0)[i], w)
		}
	}
	arr2 := vec.MustArrayF32(4, 2)
	copy(arr2.Row(0), []float32{1, 5, 3, 7})
	copy(arr2.Row(1), []float32{2, 4, 6, 1})
	p := NewPageRank()
	p.ReduceVec(arr2, 2)
	wantSum := []float32{3, 9, 9, 8}
	for i, w := range wantSum {
		if arr2.Row(0)[i] != w {
			t.Fatalf("PageRank ReduceVec lane %d = %v, want %v", i, arr2.Row(0)[i], w)
		}
	}
}
