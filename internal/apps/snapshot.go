package apps

import (
	"fmt"

	"hetgraph/internal/checkpoint"
	"hetgraph/internal/graph"
)

// The float32 applications implement checkpoint.Snapshotter so the
// heterogeneous runtime can checkpoint them at superstep boundaries and
// finish single-device after a device failure. Each snapshot carries the
// full per-vertex state array; derived state (PageRank's per-edge share) is
// recomputed on restore.

// Snapshot implements checkpoint.Snapshotter.
func (p *PageRank) Snapshot() ([]byte, error) {
	return checkpoint.EncodeF32(p.Ranks), nil
}

// Restore implements checkpoint.Snapshotter.
func (p *PageRank) Restore(state []byte) error {
	ranks, err := checkpoint.DecodeF32(state)
	if err != nil {
		return err
	}
	if len(ranks) != len(p.Ranks) {
		return fmt.Errorf("apps: PageRank snapshot has %d vertices, app has %d", len(ranks), len(p.Ranks))
	}
	p.Ranks = ranks
	for v := range p.Ranks {
		if d := p.g.OutDegree(graph.VertexID(v)); d > 0 {
			p.share[v] = p.Ranks[v] / float32(d)
		}
	}
	return nil
}

// Snapshot implements checkpoint.Snapshotter.
func (b *BFS) Snapshot() ([]byte, error) {
	return checkpoint.EncodeI32(b.Levels), nil
}

// Restore implements checkpoint.Snapshotter.
func (b *BFS) Restore(state []byte) error {
	levels, err := checkpoint.DecodeI32(state)
	if err != nil {
		return err
	}
	if len(levels) != len(b.Levels) {
		return fmt.Errorf("apps: BFS snapshot has %d vertices, app has %d", len(levels), len(b.Levels))
	}
	b.Levels = levels
	return nil
}

// Snapshot implements checkpoint.Snapshotter.
func (s *SSSP) Snapshot() ([]byte, error) {
	return checkpoint.EncodeF32(s.Dist), nil
}

// Restore implements checkpoint.Snapshotter.
func (s *SSSP) Restore(state []byte) error {
	dist, err := checkpoint.DecodeF32(state)
	if err != nil {
		return err
	}
	if len(dist) != len(s.Dist) {
		return fmt.Errorf("apps: SSSP snapshot has %d vertices, app has %d", len(dist), len(s.Dist))
	}
	s.Dist = dist
	return nil
}

// Snapshot implements checkpoint.Snapshotter.
func (c *ConnectedComponents) Snapshot() ([]byte, error) {
	return checkpoint.EncodeF32(c.Labels), nil
}

// Restore implements checkpoint.Snapshotter.
func (c *ConnectedComponents) Restore(state []byte) error {
	labels, err := checkpoint.DecodeF32(state)
	if err != nil {
		return err
	}
	if len(labels) != len(c.Labels) {
		return fmt.Errorf("apps: ConnectedComponents snapshot has %d vertices, app has %d", len(labels), len(c.Labels))
	}
	c.Labels = labels
	return nil
}
