package ompbase

import (
	"math"
	"testing"

	"hetgraph/internal/apps"
	"hetgraph/internal/gen"
	"hetgraph/internal/graph"
	"hetgraph/internal/machine"
	"hetgraph/internal/seqref"
)

func TestOMPSSSPMatchesDijkstra(t *testing.T) {
	g, err := gen.PowerLaw(gen.PowerLawConfig{N: 2000, MeanDeg: 6, Alpha: 2.2, FrontBias: 0.6, Locality: 0.5, LocalWindow: 0.02, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	wg, err := gen.WithWeights(g, 0, 5, 7)
	if err != nil {
		t.Fatal(err)
	}
	want := seqref.ClassicSSSP(wg, 0)
	for _, dev := range []machine.DeviceSpec{machine.CPU(), machine.MIC()} {
		app := apps.NewSSSP(0)
		res, err := RunF32(app, wg, dev, 8, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Errorf("%s: did not converge", dev.Name)
		}
		for v := range want {
			if app.Dist[v] != want[v] {
				t.Fatalf("%s: dist[%d] = %v, want %v", dev.Name, v, app.Dist[v], want[v])
			}
		}
		if res.Counters.Messages == 0 || res.SimSeconds <= 0 {
			t.Errorf("%s: counters/time empty", dev.Name)
		}
	}
}

func TestOMPBFSMatchesClassic(t *testing.T) {
	g, err := gen.Uniform(1500, 9000, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := seqref.ClassicBFS(g, 0)
	app := apps.NewBFS(0)
	if _, err := RunF32(app, g, machine.CPU(), 8, 0); err != nil {
		t.Fatal(err)
	}
	for v := range want {
		if app.Levels[v] != want[v] {
			t.Fatalf("level[%d] = %d, want %d", v, app.Levels[v], want[v])
		}
	}
}

func TestOMPPageRankFixedIterations(t *testing.T) {
	g, err := gen.Uniform(800, 6000, 5)
	if err != nil {
		t.Fatal(err)
	}
	const iters = 5
	want := seqref.ClassicPageRank(g, 0.85, iters)
	app := apps.NewPageRank()
	res, err := RunF32(app, g, machine.MIC(), 8, iters)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != iters {
		t.Fatalf("iterations = %d, want %d", res.Iterations, iters)
	}
	for v := range want {
		if diff := math.Abs(float64(app.Ranks[v] - want[v])); diff > 1e-3 {
			t.Fatalf("rank[%d] = %v, want %v", v, app.Ranks[v], want[v])
		}
	}
}

func TestOMPTopoSortValid(t *testing.T) {
	g, err := gen.RandomDAG(gen.DAGConfig{N: 500, M: 20000, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	app := apps.NewTopoSort()
	res, err := RunF32(app, g, machine.MIC(), 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || !app.Ordered() {
		t.Fatal("toposort incomplete")
	}
	if !seqref.ValidTopoOrder(g, app.Order) {
		t.Fatal("invalid order")
	}
	// The dense DAG must show contention for the model (hot columns).
	if res.Counters.ConflictExpected <= 0 {
		t.Error("no contention recorded on dense DAG")
	}
}

func TestOMPGenericSemiClustering(t *testing.T) {
	g, err := gen.Community(gen.CommunityConfig{N: 400, Communities: 4, IntraDeg: 3, InterFrac: 0.05, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	const maxIters = 4
	seqApp := apps.NewSemiClustering(3, 4, 0.2)
	if _, _, err := seqref.RunGenericSeq[apps.SCMsg](seqApp, g, maxIters); err != nil {
		t.Fatal(err)
	}
	app := apps.NewSemiClustering(3, 4, 0.2)
	res, err := RunGeneric[apps.SCMsg](app, g, machine.CPU(), 8, maxIters)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations == 0 {
		t.Fatal("no iterations")
	}
	for v := range seqApp.Clusters {
		if len(seqApp.Clusters[v]) != len(app.Clusters[v]) {
			t.Fatalf("vertex %d cluster counts differ", v)
		}
		for i := range seqApp.Clusters[v] {
			if seqApp.Clusters[v][i].Score != app.Clusters[v][i].Score {
				t.Fatalf("vertex %d cluster %d scores differ", v, i)
			}
		}
	}
}

func TestOMPInvalidDevice(t *testing.T) {
	bad := machine.CPU()
	bad.ScalarNS = 0
	if _, err := RunF32(apps.NewBFS(0), genSmall(t), bad, 4, 0); err == nil {
		t.Error("accepted invalid device")
	}
	if _, err := RunGeneric[apps.SCMsg](apps.NewSemiClustering(2, 3, 0.2), genSmall(t), bad, 4, 3); err == nil {
		t.Error("generic accepted invalid device")
	}
}

func genSmall(t *testing.T) *graph.CSR {
	g, err := gen.Uniform(10, 20, 1)
	if err != nil {
		t.Fatal(err)
	}
	return g
}
