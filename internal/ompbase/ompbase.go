// Package ompbase is the OpenMP baseline of §V-C: each application written
// as flat parallel loops with OpenMP-style per-vertex locks, no message
// buffer, and no SIMD (the paper verified from the compiler's vectorization
// report that "the major loops of the applications written in OpenMP are
// not vectorized" because of the random memory access pattern).
//
// One iteration is a single parallel-for over active vertices that pushes
// updates directly into per-destination accumulators under locks — the
// natural way to write these algorithms with OpenMP directives. The real
// execution uses sharded mutexes; the cost model prices each accumulation
// at the device's OpenMP lock cost, with the same contention estimator the
// framework's locking scheme uses (the access pattern is identical).
package ompbase

import (
	"sync"
	"time"

	"hetgraph/internal/core"
	"hetgraph/internal/graph"
	"hetgraph/internal/machine"
	"hetgraph/internal/sched"
)

// lockShards bounds real mutex memory; the modeled lock cost is per-vertex
// as OpenMP codes lock per destination.
const lockShards = 1024

// Result mirrors core.Result for the baseline.
type Result struct {
	Iterations  int64
	Converged   bool
	Counters    machine.Counters
	SimSeconds  float64
	WallSeconds float64
}

// RunF32 executes an AppF32 under the OpenMP-style execution model on the
// modeled device with `threads` real goroutines (0 = device threads).
// maxIters bounds the run (0 = core.DefaultMaxIterations); fixed-active
// apps like PageRank run exactly maxIters iterations.
func RunF32(app core.AppF32, g *graph.CSR, dev machine.DeviceSpec, threads, maxIters int) (Result, error) {
	start := time.Now()
	if threads <= 0 {
		threads = dev.Threads()
	}
	if maxIters <= 0 {
		maxIters = core.DefaultMaxIterations
	}
	cm, err := machine.NewCostModel(dev, app.Profile())
	if err != nil {
		return Result{}, err
	}
	n := g.NumVertices()
	var (
		mu      [lockShards]sync.Mutex
		vals    = make([]float32, n)
		has     = make([]bool, n)
		touched = make([][]graph.VertexID, threads)
	)
	active := app.Init(g)
	fixed := core.IsFixedActive(app)
	initial := active
	var res Result
	counts := make([]int32, n) // per-destination accumulations, for contention stats
	for iter := 0; iter < maxIters; iter++ {
		if len(active) == 0 {
			res.Converged = true
			break
		}
		var c machine.Counters
		c.Iterations = 1
		c.Steps = 1
		c.ActiveVertices = int64(len(active))
		for i := range counts {
			counts[i] = 0
		}
		// Fused parallel loop: generate + accumulate under per-vertex locks.
		s, err := sched.New(int64(len(active)), sched.ChunkFor(int64(len(active)), threads))
		if err != nil {
			return Result{}, err
		}
		var wg sync.WaitGroup
		msgs := make([]int64, threads)
		for t := 0; t < threads; t++ {
			wg.Add(1)
			go func(t int) {
				defer wg.Done()
				touched[t] = touched[t][:0]
				emit := func(dst graph.VertexID, val float32) {
					sh := int(dst) % lockShards
					mu[sh].Lock()
					if has[dst] {
						vals[dst] = app.ReduceScalar(vals[dst], val)
					} else {
						has[dst] = true
						vals[dst] = val
						touched[t] = append(touched[t], dst)
					}
					counts[dst]++ // guarded by the same shard lock
					mu[sh].Unlock()
					msgs[t]++
				}
				for {
					lo, hi, ok := s.Next()
					if !ok {
						break
					}
					for i := lo; i < hi; i++ {
						app.Generate(active[i], emit)
					}
				}
			}(t)
		}
		wg.Wait()
		for _, m := range msgs {
			c.Messages += m
		}
		c.EdgesTraversed = c.Messages
		c.TaskFetches += s.Fetches()
		exp, floor := machine.ContentionStats(counts, dev.Threads())
		c.ConflictExpected = exp
		c.SerialFloorMsgs = floor

		// Scalar "processing" already happened inside the accumulators;
		// count the reductions for the model.
		var next []graph.VertexID
		for t := 0; t < threads; t++ {
			for _, dst := range touched[t] {
				c.ReducedMessages += int64(counts[dst])
				c.UpdatedVertices++
				if app.Update(dst, vals[dst]) {
					next = append(next, dst)
				}
				has[dst] = false
			}
		}
		res.Iterations++
		res.Counters.Add(c)
		res.SimSeconds += cm.OMP(c, dev.Threads())
		if fixed {
			active = initial
		} else {
			active = next
		}
	}
	if len(active) == 0 {
		res.Converged = true
	}
	res.WallSeconds = time.Since(start).Seconds()
	return res, nil
}

// RunGeneric executes an AppGeneric under the OpenMP-style model: the
// parallel loop appends messages to per-vertex lists under locks, then a
// second parallel region processes and updates.
func RunGeneric[T any](app core.AppGeneric[T], g *graph.CSR, dev machine.DeviceSpec, threads, maxIters int) (Result, error) {
	start := time.Now()
	if threads <= 0 {
		threads = dev.Threads()
	}
	cm, err := machine.NewCostModel(dev, app.Profile())
	if err != nil {
		return Result{}, err
	}
	n := g.NumVertices()
	var mu [lockShards]sync.Mutex
	lists := make([][]T, n)
	counts := make([]int32, n)
	active := app.Init(g)
	var res Result
	for iter := 0; iter < maxIters; iter++ {
		if len(active) == 0 {
			res.Converged = true
			break
		}
		var c machine.Counters
		c.Iterations = 1
		c.Steps = 2
		c.ActiveVertices = int64(len(active))
		for i := range counts {
			counts[i] = 0
		}
		s, err := sched.New(int64(len(active)), sched.ChunkFor(int64(len(active)), threads))
		if err != nil {
			return Result{}, err
		}
		var wg sync.WaitGroup
		msgs := make([]int64, threads)
		for t := 0; t < threads; t++ {
			wg.Add(1)
			go func(t int) {
				defer wg.Done()
				emit := func(dst graph.VertexID, val T) {
					sh := int(dst) % lockShards
					mu[sh].Lock()
					lists[dst] = append(lists[dst], val)
					counts[dst]++
					mu[sh].Unlock()
					msgs[t]++
				}
				for {
					lo, hi, ok := s.Next()
					if !ok {
						break
					}
					for i := lo; i < hi; i++ {
						app.Generate(active[i], emit)
					}
				}
			}(t)
		}
		wg.Wait()
		for _, m := range msgs {
			c.Messages += m
		}
		c.EdgesTraversed = c.Messages
		c.TaskFetches += s.Fetches()
		exp, floor := machine.ContentionStats(counts, dev.Threads())
		c.ConflictExpected = exp
		c.SerialFloorMsgs = floor
		var next []graph.VertexID
		for v := 0; v < n; v++ {
			if len(lists[v]) == 0 {
				continue
			}
			resMsg := app.Process(graph.VertexID(v), lists[v])
			c.ReducedMessages += int64(len(lists[v]))
			c.UpdatedVertices++
			if app.Update(graph.VertexID(v), resMsg) {
				next = append(next, graph.VertexID(v))
			}
			lists[v] = lists[v][:0]
		}
		res.Iterations++
		res.Counters.Add(c)
		res.SimSeconds += cm.OMP(c, dev.Threads())
		active = next
	}
	if len(active) == 0 {
		res.Converged = true
	}
	res.WallSeconds = time.Since(start).Seconds()
	return res, nil
}
