package metrics

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"sync"
	"sync/atomic"
)

// liveCollector is the collector the process-wide debug endpoints read from.
// expvar's registry is global and Publish panics on duplicates, so the
// published Func indirects through this pointer instead of capturing one
// collector — starting a second debug server (tests, repeated runs in one
// process) just swaps the pointer.
var (
	liveCollector atomic.Pointer[Collector]
	publishOnce   sync.Once
)

// publishExpvar registers the "hetgraph" expvar once per process.
func publishExpvar() {
	publishOnce.Do(func() {
		expvar.Publish("hetgraph", expvar.Func(func() any {
			c := liveCollector.Load()
			if c == nil {
				return nil
			}
			return c.expvarSnapshot()
		}))
	})
}

// expvarSnapshot is the JSON value served under /debug/vars → "hetgraph".
func (c *Collector) expvarSnapshot() map[string]any {
	c.mu.Lock()
	defer c.mu.Unlock()
	phases := map[string]any{}
	for k, a := range c.totals {
		phases[k.device+"/"+k.phase] = map[string]any{
			"wall_ns":     a.WallNS,
			"sim_seconds": a.SimSeconds,
			"events":      a.Events,
			"samples":     a.Samples,
		}
	}
	steps := map[string]int64{}
	for dev, n := range c.steps {
		steps[dev] = n
	}
	events := map[string]int64{}
	for kind, n := range c.eventKind {
		events[kind] = n
	}
	snap := map[string]any{
		"phases":     phases,
		"supersteps": steps,
		"events":     events,
	}
	if len(c.gauges) > 0 {
		gauges := make(map[string]int64, len(c.gauges))
		for name, v := range c.gauges {
			gauges[name] = v
		}
		snap["gauges"] = gauges
	}
	if len(c.links) > 0 {
		links := map[string]any{}
		for _, l := range c.links {
			links[fmt.Sprintf("%d->%d", l.From, l.To)] = map[string]any{
				"msgs":        l.Msgs,
				"bytes":       l.Bytes,
				"retransmits": l.Retransmits,
			}
		}
		snap["links"] = links
		snap["integrity"] = map[string]int64{
			"corrupt_drops": c.integ.CorruptDrops,
			"dup_drops":     c.integ.DupDrops,
			"stale_drops":   c.integ.StaleDrops,
			"retransmits":   c.integ.Retransmits,
		}
	}
	return snap
}

// servePrometheus renders the collector's running totals in the Prometheus
// text exposition format (text/plain; version=0.0.4).
func (c *Collector) servePrometheus(w http.ResponseWriter, _ *http.Request) {
	c.mu.Lock()
	type row struct {
		key phaseKey
		agg phaseAgg
	}
	rows := make([]row, 0, len(c.totals))
	for k, a := range c.totals {
		rows = append(rows, row{k, *a})
	}
	steps := make(map[string]int64, len(c.steps))
	for dev, n := range c.steps {
		steps[dev] = n
	}
	events := make(map[string]int64, len(c.eventKind))
	for kind, n := range c.eventKind {
		events[kind] = n
	}
	links := append([]LinkActivity(nil), c.links...)
	integ := c.integ
	gauges := make(map[string]int64, len(c.gauges))
	for name, v := range c.gauges {
		gauges[name] = v
	}
	c.mu.Unlock()

	sort.Slice(rows, func(i, j int) bool {
		if rows[i].key.device != rows[j].key.device {
			return rows[i].key.device < rows[j].key.device
		}
		return rows[i].key.phase < rows[j].key.phase
	})
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	fmt.Fprintln(w, "# HELP hetgraph_phase_wall_seconds_total Host wall-clock time spent per phase.")
	fmt.Fprintln(w, "# TYPE hetgraph_phase_wall_seconds_total counter")
	for _, r := range rows {
		fmt.Fprintf(w, "hetgraph_phase_wall_seconds_total{device=%q,phase=%q} %g\n",
			r.key.device, r.key.phase, float64(r.agg.WallNS)/1e9)
	}
	fmt.Fprintln(w, "# HELP hetgraph_phase_sim_seconds_total Simulated device time per phase.")
	fmt.Fprintln(w, "# TYPE hetgraph_phase_sim_seconds_total counter")
	for _, r := range rows {
		fmt.Fprintf(w, "hetgraph_phase_sim_seconds_total{device=%q,phase=%q} %g\n",
			r.key.device, r.key.phase, r.agg.SimSeconds)
	}
	fmt.Fprintln(w, "# HELP hetgraph_phase_events_total Primary event count per phase.")
	fmt.Fprintln(w, "# TYPE hetgraph_phase_events_total counter")
	for _, r := range rows {
		fmt.Fprintf(w, "hetgraph_phase_events_total{device=%q,phase=%q} %d\n",
			r.key.device, r.key.phase, r.agg.Events)
	}
	devs := make([]string, 0, len(steps))
	for dev := range steps {
		devs = append(devs, dev)
	}
	sort.Strings(devs)
	fmt.Fprintln(w, "# HELP hetgraph_supersteps_total Supersteps observed per device.")
	fmt.Fprintln(w, "# TYPE hetgraph_supersteps_total counter")
	for _, dev := range devs {
		fmt.Fprintf(w, "hetgraph_supersteps_total{device=%q} %d\n", dev, steps[dev])
	}
	kinds := make([]string, 0, len(events))
	for kind := range events {
		kinds = append(kinds, kind)
	}
	sort.Strings(kinds)
	fmt.Fprintln(w, "# HELP hetgraph_events_total Operational events recorded, by kind.")
	fmt.Fprintln(w, "# TYPE hetgraph_events_total counter")
	for _, kind := range kinds {
		fmt.Fprintf(w, "hetgraph_events_total{kind=%q} %d\n", kind, events[kind])
	}
	if len(links) > 0 {
		sort.Slice(links, func(i, j int) bool {
			if links[i].From != links[j].From {
				return links[i].From < links[j].From
			}
			return links[i].To < links[j].To
		})
		fmt.Fprintln(w, "# HELP hetgraph_link_msgs_total Messages carried per directed link.")
		fmt.Fprintln(w, "# TYPE hetgraph_link_msgs_total counter")
		for _, l := range links {
			fmt.Fprintf(w, "hetgraph_link_msgs_total{from=\"%d\",to=\"%d\"} %d\n", l.From, l.To, l.Msgs)
		}
		fmt.Fprintln(w, "# HELP hetgraph_link_bytes_total Bytes carried per directed link.")
		fmt.Fprintln(w, "# TYPE hetgraph_link_bytes_total counter")
		for _, l := range links {
			fmt.Fprintf(w, "hetgraph_link_bytes_total{from=\"%d\",to=\"%d\"} %d\n", l.From, l.To, l.Bytes)
		}
		fmt.Fprintln(w, "# HELP hetgraph_link_retransmits_total NACK-triggered retransmissions per directed link.")
		fmt.Fprintln(w, "# TYPE hetgraph_link_retransmits_total counter")
		for _, l := range links {
			fmt.Fprintf(w, "hetgraph_link_retransmits_total{from=\"%d\",to=\"%d\"} %d\n", l.From, l.To, l.Retransmits)
		}
		fmt.Fprintln(w, "# HELP hetgraph_integrity_total Wire-integrity counters aggregated across links, by kind.")
		fmt.Fprintln(w, "# TYPE hetgraph_integrity_total counter")
		fmt.Fprintf(w, "hetgraph_integrity_total{kind=\"corrupt_drops\"} %d\n", integ.CorruptDrops)
		fmt.Fprintf(w, "hetgraph_integrity_total{kind=\"dup_drops\"} %d\n", integ.DupDrops)
		fmt.Fprintf(w, "hetgraph_integrity_total{kind=\"stale_drops\"} %d\n", integ.StaleDrops)
		fmt.Fprintf(w, "hetgraph_integrity_total{kind=\"retransmits\"} %d\n", integ.Retransmits)
	}
	if len(gauges) > 0 {
		names := make([]string, 0, len(gauges))
		for name := range gauges {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Fprintf(w, "# HELP hetgraph_%s Live daemon gauge (see docs/observability.md).\n", name)
			fmt.Fprintf(w, "# TYPE hetgraph_%s gauge\n", name)
			fmt.Fprintf(w, "hetgraph_%s %d\n", name, gauges[name])
		}
	}
}

// DebugServer is an HTTP listener exposing the live observability endpoints
// of a running process:
//
//	/debug/pprof/...   net/http/pprof profiles (CPU, heap, goroutine, trace)
//	/debug/vars        expvar JSON, including the "hetgraph" live counters
//	/metrics           Prometheus text exposition of the same counters
//
// Each server's /metrics reads its own collector, so several embedded
// servers (hetgraph-serve plus tests, or repeated runs in one process) can
// coexist without clobbering each other; only the process-global expvar
// "hetgraph" variable — which cannot be re-registered — indirects through
// the most recently started server's collector.
type DebugServer struct {
	ln  net.Listener
	srv *http.Server
	col *Collector

	closeOnce sync.Once
	closeErr  error
}

// StartDebugServer listens on addr (e.g. "localhost:6060"; ":0" picks a free
// port) and serves the debug endpoints, reading live counters from col. It
// returns immediately; the server runs until Close. Use Addr for the bound
// address when addr asked for an ephemeral port.
func StartDebugServer(addr string, col *Collector) (*DebugServer, error) {
	if col == nil {
		return nil, ErrNoCollector
	}
	liveCollector.Store(col)
	publishExpvar()
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	// Serve this server's collector, not the global liveCollector — two
	// embedded servers with different collectors must not interfere.
	mux.HandleFunc("/metrics", col.servePrometheus)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("metrics: debug listener: %w", err)
	}
	ds := &DebugServer{ln: ln, srv: &http.Server{Handler: mux}, col: col}
	go ds.srv.Serve(ln) //nolint:errcheck // ErrServerClosed after Close
	return ds, nil
}

// Addr returns the server's actual listen address (useful with ":0").
func (d *DebugServer) Addr() string { return d.ln.Addr().String() }

// Collector returns the collector this server reads from.
func (d *DebugServer) Collector() *Collector { return d.col }

// Close stops the listener and in-flight handlers. Idempotent: repeated
// calls return the first close's error.
func (d *DebugServer) Close() error {
	d.closeOnce.Do(func() { d.closeErr = d.srv.Close() })
	return d.closeErr
}
