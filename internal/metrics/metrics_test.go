package metrics

import (
	"bytes"
	"io"
	"net/http"
	"reflect"
	"strings"
	"sync"
	"testing"

	"hetgraph/internal/machine"
)

func sampleReport() *RunReport {
	c := NewCollector()
	c.RecordPhase(PhaseSample{Device: "CPU", Rank: 0, Superstep: 0, Phase: PhaseGenerate, WallNS: 1500, SimSeconds: 0.25, Events: 100})
	c.RecordPhase(PhaseSample{Device: "CPU", Rank: 0, Superstep: 0, Phase: PhaseProcess, WallNS: 900, SimSeconds: 0.125, Events: 80})
	c.RecordPhase(PhaseSample{Device: "MIC", Rank: 1, Superstep: 0, Phase: PhaseGenerate, WallNS: 2100, SimSeconds: 0.5, Events: 120})
	c.RecordEvent(Event{UnixNano: 42, Kind: EventCheckpoint, Rank: -1, Superstep: 2, WallNS: 300, Detail: "generation 1"})
	r := c.Report()
	r.Tool = "test"
	r.App = "pagerank"
	r.Graph = GraphInfo{Path: "g.adj", Vertices: 1000, Edges: 20000, Weighted: true}
	r.Config = []RunConfig{
		{Rank: 0, Device: "CPU", Scheme: "lock", Vectorized: true, Threads: 16},
		{Rank: 1, Device: "MIC", Scheme: "pipe", Vectorized: true, Threads: 240},
	}
	r.Devices = []DeviceReport{{Rank: 0, Device: "CPU", Iterations: 1, Counters: machine.Counters{Messages: 100, Iterations: 1}}}
	r.Totals = Totals{Iterations: 1, Converged: true, SimSeconds: 0.875, WallSeconds: 0.01}
	r.Seal()
	return r
}

func TestCollectorAccumulates(t *testing.T) {
	c := NewCollector()
	for i := 0; i < 3; i++ {
		c.RecordPhase(PhaseSample{Device: "CPU", Superstep: int64(i), Phase: PhaseGenerate, WallNS: 10, SimSeconds: 0.5, Events: 2})
	}
	c.RecordEvent(Event{Kind: EventResume})
	if c.Len() != 3 {
		t.Fatalf("Len = %d", c.Len())
	}
	snap := c.expvarSnapshot()
	phases := snap["phases"].(map[string]any)
	agg := phases["CPU/generate"].(map[string]any)
	if agg["wall_ns"].(int64) != 30 || agg["events"].(int64) != 6 || agg["samples"].(int64) != 3 {
		t.Fatalf("aggregate wrong: %+v", agg)
	}
	if snap["supersteps"].(map[string]int64)["CPU"] != 3 {
		t.Fatalf("supersteps wrong: %+v", snap["supersteps"])
	}
	if snap["events"].(map[string]int64)[EventResume] != 1 {
		t.Fatalf("event counts wrong: %+v", snap["events"])
	}
}

func TestCollectorConcurrent(t *testing.T) {
	c := NewCollector()
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				c.RecordPhase(PhaseSample{Device: "D", Rank: r, Superstep: int64(i), Phase: PhaseUpdate, WallNS: 1, Events: 1})
				c.RecordEvent(Event{Kind: EventCheckpoint, Rank: r, Superstep: int64(i)})
			}
		}(r)
	}
	wg.Wait()
	if c.Len() != 1000 || len(c.Events()) != 1000 {
		t.Fatalf("lost records: %d phases, %d events", c.Len(), len(c.Events()))
	}
	// Phases() orders by rank then superstep.
	ph := c.Phases()
	for i := 1; i < len(ph); i++ {
		if ph[i].Rank < ph[i-1].Rank || (ph[i].Rank == ph[i-1].Rank && ph[i].Superstep < ph[i-1].Superstep) {
			t.Fatalf("phases out of order at %d: %+v then %+v", i, ph[i-1], ph[i])
		}
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	r := sampleReport()
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadReport(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r, got) {
		t.Fatalf("round trip mismatch:\nwrote %+v\nread  %+v", r, got)
	}
	if got.Version != ReportVersion {
		t.Fatalf("version = %d", got.Version)
	}
	if got.Fingerprint == "" || got.Fingerprint != r.Fingerprint {
		t.Fatalf("fingerprint lost: %q vs %q", got.Fingerprint, r.Fingerprint)
	}
}

func TestReportFileRoundTrip(t *testing.T) {
	r := sampleReport()
	path := t.TempDir() + "/r.json"
	if err := WriteReportFile(path, r); err != nil {
		t.Fatal(err)
	}
	got, err := ReadReportFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r, got) {
		t.Fatal("file round trip mismatch")
	}
}

func TestReportVersionCompatibility(t *testing.T) {
	r := sampleReport()
	r.Version = ReportVersion + 1
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadReport(&buf); err == nil {
		t.Fatal("future version accepted")
	}
	r.Version = 0
	buf.Reset()
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadReport(&buf); err == nil {
		t.Fatal("version 0 accepted")
	}
	if _, err := ReadReport(strings.NewReader("{not json")); err == nil {
		t.Fatal("malformed JSON accepted")
	}
}

func TestReportValidate(t *testing.T) {
	r := sampleReport()
	r.Phases = append(r.Phases, PhaseSample{Device: "CPU", Phase: ""})
	if err := r.Validate(); err == nil {
		t.Fatal("missing phase name accepted")
	}
	r = sampleReport()
	r.Phases[0].WallNS = -1
	if err := r.Validate(); err == nil {
		t.Fatal("negative wall time accepted")
	}
	r = sampleReport()
	r.Events = append(r.Events, Event{})
	if err := r.Validate(); err == nil {
		t.Fatal("kindless event accepted")
	}
}

func TestSealDeterministic(t *testing.T) {
	a, b := sampleReport(), sampleReport()
	if a.Fingerprint != b.Fingerprint {
		t.Fatalf("same workload, different fingerprints: %q vs %q", a.Fingerprint, b.Fingerprint)
	}
	b.Graph.Vertices++
	b.Seal()
	if a.Fingerprint == b.Fingerprint {
		t.Fatal("different workload, same fingerprint")
	}
}

func TestCollectorRecordLinks(t *testing.T) {
	c := NewCollector()
	var _ LinkRecorder = c // Collector opts into the extension interface
	c.RecordLinks([]LinkActivity{
		{From: 1, To: 0, Msgs: 7, Bytes: 90, Retransmits: 2},
		{From: 0, To: 1, Msgs: 5, Bytes: 64},
	}, IntegritySnapshot{CorruptDrops: 2, Retransmits: 2})
	links := c.Links()
	if len(links) != 2 || links[0].From != 0 || links[1].Retransmits != 2 {
		t.Fatalf("Links() = %+v, want sorted copy of the recorded pair", links)
	}
	if got := c.Integrity(); got.CorruptDrops != 2 || got.Retransmits != 2 {
		t.Fatalf("Integrity() = %+v", got)
	}
	r := c.Report()
	if len(r.Links) != 2 {
		t.Fatalf("Report().Links = %+v, want the recorded pair", r.Links)
	}
	r.Totals.CorruptDrops = 2
	r.Totals.Retransmits = 2
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Links) != 2 || back.Links[1].Msgs != 7 || back.Totals.CorruptDrops != 2 {
		t.Fatalf("round-trip lost link/integrity data: %+v %+v", back.Links, back.Totals)
	}
}

func TestDebugServerEndpoints(t *testing.T) {
	c := NewCollector()
	c.RecordPhase(PhaseSample{Device: "MIC", Rank: 1, Superstep: 0, Phase: PhaseGenerate, WallNS: 1000, SimSeconds: 0.5, Events: 7})
	c.RecordEvent(Event{Kind: EventDegraded, Rank: 1, Superstep: 3})
	c.RecordLinks([]LinkActivity{{From: 1, To: 0, Msgs: 7, Bytes: 90, Retransmits: 2}},
		IntegritySnapshot{CorruptDrops: 2, Retransmits: 2})
	ds, err := StartDebugServer("127.0.0.1:0", c)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	get := func(path string) string {
		resp, err := http.Get("http://" + ds.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	prom := get("/metrics")
	for _, want := range []string{
		`hetgraph_phase_wall_seconds_total{device="MIC",phase="generate"} 1e-06`,
		`hetgraph_phase_sim_seconds_total{device="MIC",phase="generate"} 0.5`,
		`hetgraph_phase_events_total{device="MIC",phase="generate"} 7`,
		`hetgraph_supersteps_total{device="MIC"} 1`,
		`hetgraph_events_total{kind="degraded"} 1`,
		`hetgraph_link_msgs_total{from="1",to="0"} 7`,
		`hetgraph_link_bytes_total{from="1",to="0"} 90`,
		`hetgraph_link_retransmits_total{from="1",to="0"} 2`,
		`hetgraph_integrity_total{kind="corrupt_drops"} 2`,
		`hetgraph_integrity_total{kind="retransmits"} 2`,
	} {
		if !strings.Contains(prom, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, prom)
		}
	}
	vars := get("/debug/vars")
	if !strings.Contains(vars, `"hetgraph"`) || !strings.Contains(vars, "supersteps") {
		t.Fatalf("/debug/vars missing hetgraph section:\n%.400s", vars)
	}
	if got := get("/debug/pprof/cmdline"); got == "" {
		t.Fatal("/debug/pprof/cmdline empty")
	}
}

func TestStartDebugServerNilCollector(t *testing.T) {
	if _, err := StartDebugServer("127.0.0.1:0", nil); err == nil {
		t.Fatal("nil collector accepted")
	}
}
