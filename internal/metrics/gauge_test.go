package metrics

import (
	"io"
	"net/http"
	"strings"
	"testing"
)

func TestCollectorGauges(t *testing.T) {
	c := NewCollector()
	c.SetGauge("jobs_queued", 3)
	c.SetGauge("jobs_queued", 5) // set overwrites
	if got := c.AddGauge("jobs_shed_total", 2); got != 2 {
		t.Fatalf("AddGauge returned %d, want 2", got)
	}
	c.AddGauge("jobs_shed_total", 1)
	g := c.Gauges()
	if g["jobs_queued"] != 5 || g["jobs_shed_total"] != 3 {
		t.Fatalf("gauges = %v, want jobs_queued=5 jobs_shed_total=3", g)
	}
	// The returned map is a copy: mutating it must not touch the collector.
	g["jobs_queued"] = 99
	if c.Gauges()["jobs_queued"] != 5 {
		t.Fatal("Gauges() exposed the collector's internal map")
	}
	// Collector satisfies the optional interface the serve daemon asserts.
	var _ GaugeRecorder = c
}

func getBody(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestDebugServerGaugesExported(t *testing.T) {
	c := NewCollector()
	c.SetGauge("jobs_running", 2)
	ds, err := StartDebugServer("127.0.0.1:0", c)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	prom := getBody(t, "http://"+ds.Addr()+"/metrics")
	for _, want := range []string{
		"# TYPE hetgraph_jobs_running gauge",
		"hetgraph_jobs_running 2",
	} {
		if !strings.Contains(prom, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, prom)
		}
	}
	vars := getBody(t, "http://"+ds.Addr()+"/debug/vars")
	if !strings.Contains(vars, `"jobs_running"`) {
		t.Fatalf("/debug/vars missing gauges section:\n%.400s", vars)
	}
}

// TestDebugServerEmbeddable is the regression test for embedding the debug
// server in a daemon: two servers in one process must each serve their own
// collector's /metrics (not a shared global), and Close must be idempotent
// and actually free the listener.
func TestDebugServerEmbeddable(t *testing.T) {
	c1 := NewCollector()
	c1.RecordPhase(PhaseSample{Device: "CPU", Rank: 0, Superstep: 0, Phase: PhaseGenerate, WallNS: 1000, SimSeconds: 1, Events: 1})
	c2 := NewCollector()
	c2.SetGauge("jobs_queued", 7)

	ds1, err := StartDebugServer("127.0.0.1:0", c1)
	if err != nil {
		t.Fatal(err)
	}
	defer ds1.Close()
	ds2, err := StartDebugServer("127.0.0.1:0", c2)
	if err != nil {
		t.Fatalf("second debug server in one process: %v", err)
	}

	m1 := getBody(t, "http://"+ds1.Addr()+"/metrics")
	m2 := getBody(t, "http://"+ds2.Addr()+"/metrics")
	if !strings.Contains(m1, `hetgraph_phase_events_total{device="CPU",phase="generate"} 1`) {
		t.Fatalf("server 1 /metrics missing its own collector's phases:\n%s", m1)
	}
	if strings.Contains(m1, "hetgraph_jobs_queued") {
		t.Fatal("server 1 /metrics leaked server 2's gauges (global collector bug)")
	}
	if !strings.Contains(m2, "hetgraph_jobs_queued 7") {
		t.Fatalf("server 2 /metrics missing its own collector's gauges:\n%s", m2)
	}
	if ds1.Collector() != c1 || ds2.Collector() != c2 {
		t.Fatal("Collector() does not return the server's own collector")
	}

	if err := ds2.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ds2.Close(); err != nil {
		t.Fatalf("second Close: %v, want idempotent nil", err)
	}
	if _, err := http.Get("http://" + ds2.Addr() + "/metrics"); err == nil {
		t.Fatal("closed debug server still accepting connections")
	}
}
