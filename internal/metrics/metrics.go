// Package metrics is the run-report observability layer: it captures what a
// run actually cost on the host — wall-clock time per superstep per phase,
// alongside the cost model's simulated device seconds — plus an event log of
// everything operationally interesting (checkpoints, faults, degradations,
// resumes, errors), and serializes the whole thing as a versioned JSON
// RunReport.
//
// The engine talks to this package through the Sink interface, attached via
// core.Options.Metrics. A nil sink costs one branch per phase and zero
// allocations on the iteration hot path, mirroring Options.Trace. The
// bundled Collector implements Sink, is safe for concurrent use (the
// heterogeneous runner records from two device goroutines), and doubles as
// the data source for the live debug endpoints (see debug.go).
//
// Relationship to internal/trace: trace records *simulated* seconds only and
// feeds the human-readable summary/CSV timeline; metrics records wall clock
// and simulated time together, adds the event log, and feeds machine-readable
// artifacts (JSON report, expvar, Prometheus text). The two are independent —
// attach either, both, or neither.
package metrics

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"sort"
	"sync"
	"time"

	"hetgraph/internal/machine"
)

// Phase names used by the engines (aligned with internal/trace).
const (
	PhaseGenerate = "generate"
	PhaseExchange = "exchange"
	PhaseProcess  = "process"
	PhaseUpdate   = "update"
)

// Event kinds emitted by the runtime.
const (
	// EventCheckpoint is a successful superstep-boundary checkpoint capture
	// (Detail names the durable generation when a store is attached).
	EventCheckpoint = "checkpoint"
	// EventCheckpointFailed is a failed checkpoint capture or durable commit.
	EventCheckpointFailed = "checkpoint-failed"
	// EventResume is a cold start restored from an on-disk checkpoint.
	EventResume = "resume"
	// EventDeviceFailed is a rank dying mid-run (injected fault, timeout,
	// panic, or peer verdict).
	EventDeviceFailed = "device-failed"
	// EventDegraded is the survivor restoring a checkpoint and continuing
	// single-device.
	EventDegraded = "degraded"
	// EventSuperstepError is an iteration failing mid-run on a single-device
	// loop, attributed to its superstep.
	EventSuperstepError = "superstep-error"
	// EventRunAborted is a run abandoned without recovery (e.g. a broken
	// durable store, or an operator abort via Options.Abort).
	EventRunAborted = "run-aborted"
	// EventRejoined is a recovered rank re-admitted at a superstep barrier
	// after a degrade→heal cycle, returning the run to two-device lockstep.
	EventRejoined = "rejoined"
	// EventRejoinFailed is a rejoin attempt that could not re-admit the
	// recovered rank (restart or handshake failure); the run continues
	// degraded.
	EventRejoinFailed = "rejoin-failed"
	// EventPartitioned is a network partition detected and fenced: every
	// live rank reported severed links, the surviving-link graph split into
	// exactly two sides, the quorum side continues degraded, and the
	// minority side is cut off (Detail names both sides).
	EventPartitioned = "partitioned"
	// EventRankSuspect is the health scorer moving a rank from healthy to
	// suspect: its EWMA superstep latency crossed the straggler threshold
	// (a gray failure in the making, distinct from the dead-rank path).
	EventRankSuspect = "rank-suspect"
	// EventRankStraggler is the scorer confirming a suspect rank as a
	// straggler after sustained over-threshold latency.
	EventRankStraggler = "rank-straggler"
	// EventSoftDegraded is a confirmed straggler demoted at a checkpoint
	// barrier: its vertices are reassigned to the healthy owners while the
	// rank stays in the group as a non-owning member.
	EventSoftDegraded = "soft-degraded"
	// EventRehabilitated is a soft-degraded rank restored to vertex
	// ownership after its latency re-normalized.
	EventRehabilitated = "rehabilitated"
)

// Job-lifecycle event kinds emitted by the serve daemon (see internal/serve
// and docs/serving.md). Rank is -1 on all of them; Detail carries the job ID.
const (
	// EventJobAdmitted is a job accepted into the bounded queue.
	EventJobAdmitted = "job-admitted"
	// EventJobShed is a submission rejected by admission control (queue
	// full, tenant over its concurrency limit, or the daemon draining).
	EventJobShed = "job-shed"
	// EventJobStarted is a worker beginning a job attempt.
	EventJobStarted = "job-started"
	// EventJobRetried is a job re-attempted after a retryable typed error.
	EventJobRetried = "job-retried"
	// EventJobResumed is a journaled in-flight job re-queued at daemon
	// restart (it continues from its newest durable checkpoint).
	EventJobResumed = "job-resumed"
	// EventJobCompleted is a job finishing successfully.
	EventJobCompleted = "job-completed"
	// EventJobFailed is a job exhausting retries or failing permanently.
	EventJobFailed = "job-failed"
	// EventJobCanceled is a job canceled by the client or a deadline.
	EventJobCanceled = "job-canceled"
	// EventDrain is the daemon entering graceful drain.
	EventDrain = "drain"
)

// PhaseSample is one phase of one superstep on one device, with both the
// host wall-clock duration and the cost model's simulated device seconds.
type PhaseSample struct {
	// Device is the modeled device name ("CPU", "MIC").
	Device string `json:"device"`
	// Rank is the device rank in a heterogeneous run (0 for single-device).
	Rank int `json:"rank"`
	// Superstep is the superstep index the sample belongs to.
	Superstep int64 `json:"superstep"`
	// Phase is one of the Phase* constants.
	Phase string `json:"phase"`
	// Direction is the traversal direction the superstep ran in ("push" or
	// "pull"); empty for applications without direction switching. Additive
	// within report version 1.
	Direction string `json:"direction,omitempty"`
	// WallNS is the measured host wall-clock duration in nanoseconds.
	WallNS int64 `json:"wall_ns"`
	// SimSeconds is the phase's simulated device time.
	SimSeconds float64 `json:"sim_seconds"`
	// Events is the phase's primary event count (messages generated,
	// messages reduced, vertices updated, bytes exchanged).
	Events int64 `json:"events"`
}

// Event is one operational event with a host timestamp.
type Event struct {
	// UnixNano is the host time the event was recorded.
	UnixNano int64 `json:"unix_nano"`
	// Kind is one of the Event* constants.
	Kind string `json:"kind"`
	// Rank is the rank the event concerns (-1 when not rank-specific).
	Rank int `json:"rank"`
	// Superstep is the superstep the event concerns (-1 when unknown).
	Superstep int64 `json:"superstep"`
	// WallNS is the operation's duration, for events that have one
	// (checkpoint captures); 0 otherwise.
	WallNS int64 `json:"wall_ns,omitempty"`
	// Detail is a human-readable description.
	Detail string `json:"detail,omitempty"`
}

// Sink receives phase samples and events from a running engine. A nil Sink
// on core.Options.Metrics disables all measurement at the cost of one nil
// check per phase. Implementations must be safe for concurrent use: a
// heterogeneous run records from both device goroutines.
type Sink interface {
	RecordPhase(PhaseSample)
	RecordEvent(Event)
}

// phaseKey aggregates samples for the live endpoints.
type phaseKey struct {
	device string
	phase  string
}

// phaseAgg is a per-(device, phase) running total.
type phaseAgg struct {
	WallNS     int64
	SimSeconds float64
	Events     int64
	Samples    int64
}

// Collector is the standard Sink: it accumulates samples and events for the
// RunReport and maintains per-(device, phase) running totals for the live
// debug endpoints. Safe for concurrent use.
type Collector struct {
	mu        sync.Mutex
	phases    []PhaseSample
	events    []Event
	totals    map[phaseKey]*phaseAgg
	steps     map[string]int64 // supersteps observed per device (max index + 1)
	eventKind map[string]int64
	links     []LinkActivity
	integ     IntegritySnapshot
	gauges    map[string]int64
}

// NewCollector creates an empty collector.
func NewCollector() *Collector {
	return &Collector{
		totals:    map[phaseKey]*phaseAgg{},
		steps:     map[string]int64{},
		eventKind: map[string]int64{},
		gauges:    map[string]int64{},
	}
}

// RecordPhase implements Sink.
func (c *Collector) RecordPhase(s PhaseSample) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.phases = append(c.phases, s)
	k := phaseKey{s.Device, s.Phase}
	a := c.totals[k]
	if a == nil {
		a = &phaseAgg{}
		c.totals[k] = a
	}
	a.WallNS += s.WallNS
	a.SimSeconds += s.SimSeconds
	a.Events += s.Events
	a.Samples++
	if s.Superstep+1 > c.steps[s.Device] {
		c.steps[s.Device] = s.Superstep + 1
	}
}

// RecordEvent implements Sink.
func (c *Collector) RecordEvent(e Event) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.events = append(c.events, e)
	c.eventKind[e.Kind]++
}

// Phases returns a copy of the recorded samples, sorted by (rank, superstep,
// recording order) so the report is deterministic for a given run shape. The
// result is never nil, so an empty timeline serializes as [] rather than
// null.
func (c *Collector) Phases() []PhaseSample {
	c.mu.Lock()
	out := append([]PhaseSample{}, c.phases...)
	c.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Rank != out[j].Rank {
			return out[i].Rank < out[j].Rank
		}
		return out[i].Superstep < out[j].Superstep
	})
	return out
}

// Events returns a copy of the recorded events in recording order, never
// nil (an empty log serializes as [] rather than null).
func (c *Collector) Events() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Event{}, c.events...)
}

// RecordLinks implements LinkRecorder: it stores the interconnect's
// per-link traffic and aggregate integrity counters. A run records these
// once at completion; a second call replaces the previous snapshot.
func (c *Collector) RecordLinks(links []LinkActivity, integ IntegritySnapshot) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.links = append([]LinkActivity(nil), links...)
	c.integ = integ
}

// Links returns a copy of the recorded per-link activity, sorted by
// (from, to) so reports are deterministic. Nil when nothing was recorded.
func (c *Collector) Links() []LinkActivity {
	c.mu.Lock()
	out := append([]LinkActivity(nil), c.links...)
	c.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

// SetGauge implements GaugeRecorder: it sets a named live gauge (queue
// depth, running jobs, shed count) exported on /metrics and expvar. Gauge
// names use snake_case; they surface verbatim as hetgraph_<name>.
func (c *Collector) SetGauge(name string, v int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gauges[name] = v
}

// AddGauge adjusts a named live gauge by delta and returns the new value.
func (c *Collector) AddGauge(name string, delta int64) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gauges[name] += delta
	return c.gauges[name]
}

// Gauges returns a copy of the live gauges.
func (c *Collector) Gauges() map[string]int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int64, len(c.gauges))
	for k, v := range c.gauges {
		out[k] = v
	}
	return out
}

// Integrity returns the recorded aggregate integrity counters.
func (c *Collector) Integrity() IntegritySnapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.integ
}

// Len returns the number of recorded phase samples.
func (c *Collector) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.phases)
}

// ReportVersion is the current RunReport schema version. Compatibility rule:
// within one version, fields are only ever added (with `omitempty` or a zero
// default), never renamed, removed, or re-typed; readers must reject a
// version they do not know (ReadReport enforces this). A breaking change
// bumps the version.
const ReportVersion = 1

// GraphInfo fingerprints the input graph.
type GraphInfo struct {
	Path     string `json:"path,omitempty"`
	Vertices int64  `json:"vertices"`
	Edges    int64  `json:"edges"`
	Weighted bool   `json:"weighted"`
}

// RunConfig fingerprints one device's engine options (plain values only —
// this is the machine-readable echo of core.Options, without the live
// handles).
type RunConfig struct {
	Rank              int    `json:"rank"`
	Device            string `json:"device"`
	Scheme            string `json:"scheme"`
	Vectorized        bool   `json:"vectorized"`
	Threads           int    `json:"threads"`
	K                 int    `json:"k,omitempty"`
	Workers           int    `json:"workers,omitempty"`
	Movers            int    `json:"movers,omitempty"`
	GenBatchSize      int    `json:"gen_batch_size,omitempty"`
	MaxIterations     int    `json:"max_iterations,omitempty"`
	CheckpointEvery   int    `json:"checkpoint_every,omitempty"`
	CheckpointDir     string `json:"checkpoint_dir,omitempty"`
	CheckpointRetain  int    `json:"checkpoint_retain,omitempty"`
	Resume            bool   `json:"resume,omitempty"`
	Rejoin            bool   `json:"rejoin,omitempty"`
	ExchangeTimeoutNS int64  `json:"exchange_timeout_ns,omitempty"`
	FaultPlan         string `json:"fault_plan,omitempty"`
	// Gray-failure mitigation knobs (additive within report version 1).
	StragglerThresholdNS int64  `json:"straggler_threshold_ns,omitempty"`
	StragglerPolicy      string `json:"straggler_policy,omitempty"`
}

// PhaseSeconds is a simulated per-phase time breakdown (the report-local
// mirror of core.PhaseTimes).
type PhaseSeconds struct {
	Generate float64 `json:"generate"`
	Process  float64 `json:"process"`
	Update   float64 `json:"update"`
	Exchange float64 `json:"exchange"`
}

// DeviceReport is one device's whole-run aggregate.
type DeviceReport struct {
	Rank       int    `json:"rank"`
	Device     string `json:"device"`
	Iterations int64  `json:"iterations"`
	Converged  bool   `json:"converged"`
	// Counters is the full event-count record of the device's execution.
	Counters machine.Counters `json:"counters"`
	// SimPhases is the simulated per-phase breakdown.
	SimPhases PhaseSeconds `json:"sim_phases"`
	// SimSeconds is the device's total simulated time.
	SimSeconds float64 `json:"sim_seconds"`
}

// Totals is the run-level outcome.
type Totals struct {
	Iterations  int64   `json:"iterations"`
	Converged   bool    `json:"converged"`
	SimSeconds  float64 `json:"sim_seconds"`
	WallSeconds float64 `json:"wall_seconds"`
	// ExecSeconds/CommSeconds split a heterogeneous run's simulated time
	// (zero for single-device runs).
	ExecSeconds float64 `json:"exec_seconds,omitempty"`
	CommSeconds float64 `json:"comm_seconds,omitempty"`
	// Degradation/resume outcome of a heterogeneous run.
	Degraded          bool   `json:"degraded,omitempty"`
	FailedRank        int    `json:"failed_rank,omitempty"`
	FailedSuperstep   int64  `json:"failed_superstep,omitempty"`
	ResumedSuperstep  int64  `json:"resumed_superstep,omitempty"`
	DiskResumed       bool   `json:"disk_resumed,omitempty"`
	ResumedGeneration uint64 `json:"resumed_generation,omitempty"`
	// Heal outcome of a heterogeneous run with Rejoin enabled.
	Healed             bool  `json:"healed,omitempty"`
	RejoinSuperstep    int64 `json:"rejoin_superstep,omitempty"`
	DegradedSupersteps int64 `json:"degraded_supersteps,omitempty"`
	// Ranks is the device-group size of a heterogeneous run (2 for the
	// classic CPU+MIC pair; zero for single-device runs).
	Ranks int `json:"ranks,omitempty"`
	// FailedRanks lists the ranks still down when the run ended, sorted
	// ascending; empty when the run ended at full membership.
	FailedRanks []int `json:"failed_ranks,omitempty"`
	// Wire-integrity outcome of a heterogeneous run (all additive within
	// ReportVersion 1): checksum-failed deliveries dropped, duplicate and
	// stale deliveries fenced, and NACK retransmissions that repaired the
	// corrupt ones.
	CorruptDrops int64 `json:"corrupt_drops,omitempty"`
	DupDrops     int64 `json:"dup_drops,omitempty"`
	StaleDrops   int64 `json:"stale_drops,omitempty"`
	Retransmits  int64 `json:"retransmits,omitempty"`
	// Partition outcome: whether the run split into two sides, at which
	// superstep, and which ranks held quorum (majority continues, minority
	// is fenced).
	Partitioned        bool  `json:"partitioned,omitempty"`
	PartitionSuperstep int64 `json:"partition_superstep,omitempty"`
	PartitionMajority  []int `json:"partition_majority,omitempty"`
	PartitionMinority  []int `json:"partition_minority,omitempty"`
	// Gray-failure outcome (all additive within ReportVersion 1): the ranks
	// the health scorer flagged suspect or worse, the ranks soft-degraded
	// as confirmed stragglers (with the latest demotion barrier), and the
	// ranks rehabilitated after their latency re-normalized (with the
	// latest restoration barrier).
	SuspectRanks          []int `json:"suspect_ranks,omitempty"`
	SoftDegraded          []int `json:"soft_degraded,omitempty"`
	SoftDegradeSuperstep  int64 `json:"soft_degrade_superstep,omitempty"`
	Rehabilitated         []int `json:"rehabilitated,omitempty"`
	RehabilitateSuperstep int64 `json:"rehabilitate_superstep,omitempty"`
}

// LinkActivity is one directed link's whole-run traffic: the message and
// byte counts the cost model charged, plus the wire-level retransmissions
// that repaired corrupt deliveries on that link.
type LinkActivity struct {
	From        int   `json:"from"`
	To          int   `json:"to"`
	Msgs        int64 `json:"msgs"`
	Bytes       int64 `json:"bytes"`
	Retransmits int64 `json:"retransmits,omitempty"`
}

// IntegritySnapshot aggregates the wire-integrity counters across all links
// (the metrics-local mirror of comm.IntegrityStats).
type IntegritySnapshot struct {
	CorruptDrops int64 `json:"corrupt_drops"`
	DupDrops     int64 `json:"dup_drops"`
	StaleDrops   int64 `json:"stale_drops"`
	Retransmits  int64 `json:"retransmits"`
}

// LinkRecorder is an optional extension of Sink: a sink that also implements
// it receives the interconnect's per-link traffic and integrity totals when
// a heterogeneous run finishes. Keeping it a separate interface (reached by
// type assertion) preserves every existing two-method Sink implementation
// unchanged.
type LinkRecorder interface {
	RecordLinks(links []LinkActivity, integ IntegritySnapshot)
}

// GaugeRecorder is an optional extension of Sink for live point-in-time
// values (queue depth, running jobs) as opposed to the append-only samples
// and events. Like LinkRecorder it is reached by type assertion, so plain
// two-method Sink implementations keep working unchanged.
type GaugeRecorder interface {
	SetGauge(name string, v int64)
}

// RunReport is the versioned, machine-readable record of one run.
type RunReport struct {
	// Version is the report schema version (ReportVersion at write time).
	Version int `json:"version"`
	// Tool names the producing command ("hetgraph-run", "hetgraph-bench").
	Tool string `json:"tool,omitempty"`
	// CreatedUnixNano is the host time the report was assembled.
	CreatedUnixNano int64 `json:"created_unix_nano"`
	// Fingerprint is an FNV-1a hash over graph, app, and config — two
	// reports with the same fingerprint measured the same workload shape.
	Fingerprint string `json:"fingerprint,omitempty"`
	// App names the application ("pagerank", "bfs", ...).
	App string `json:"app,omitempty"`
	// Graph fingerprints the input graph.
	Graph GraphInfo `json:"graph"`
	// Config echoes the per-rank engine options.
	Config []RunConfig `json:"config,omitempty"`
	// Devices holds each device's whole-run aggregate.
	Devices []DeviceReport `json:"devices,omitempty"`
	// Totals is the run-level outcome.
	Totals Totals `json:"totals"`
	// Links is the interconnect's per-link traffic and retransmission
	// activity (added within ReportVersion 1; omitted by older producers).
	Links []LinkActivity `json:"links,omitempty"`
	// Phases is the per-superstep per-phase timeline (wall and simulated).
	Phases []PhaseSample `json:"phases"`
	// Events is the operational event log.
	Events []Event `json:"events"`
}

// Report assembles the collector's samples and events into a fresh RunReport
// stamped with the current schema version. The caller fills in the
// workload-level sections (Graph, App, Config, Devices, Totals) and then
// calls Seal.
func (c *Collector) Report() *RunReport {
	return &RunReport{
		Version:         ReportVersion,
		CreatedUnixNano: time.Now().UnixNano(),
		Phases:          c.Phases(),
		Events:          c.Events(),
		Links:           c.Links(),
	}
}

// Seal computes the report's fingerprint from its graph, app, and config
// sections. Call after those sections are filled.
func (r *RunReport) Seal() {
	h := fnv.New64a()
	fmt.Fprintf(h, "v%d|%s|%d|%d|%v", r.Version, r.App, r.Graph.Vertices, r.Graph.Edges, r.Graph.Weighted)
	for _, cfg := range r.Config {
		fmt.Fprintf(h, "|r%d:%s:%s:%v:%d:%d", cfg.Rank, cfg.Device, cfg.Scheme, cfg.Vectorized, cfg.Threads, cfg.GenBatchSize)
	}
	r.Fingerprint = fmt.Sprintf("%016x", h.Sum64())
}

// Validate checks the structural invariants readers rely on.
func (r *RunReport) Validate() error {
	if r.Version < 1 {
		return fmt.Errorf("metrics: report version %d < 1", r.Version)
	}
	if r.Version > ReportVersion {
		return fmt.Errorf("metrics: report version %d is newer than this reader's %d", r.Version, ReportVersion)
	}
	for i, p := range r.Phases {
		if p.Phase == "" || p.Device == "" {
			return fmt.Errorf("metrics: phase sample %d missing device/phase", i)
		}
		if p.WallNS < 0 || p.SimSeconds < 0 {
			return fmt.Errorf("metrics: phase sample %d has negative time", i)
		}
	}
	for i, e := range r.Events {
		if e.Kind == "" {
			return fmt.Errorf("metrics: event %d missing kind", i)
		}
	}
	return nil
}

// WriteJSON serializes the report (indented, trailing newline).
func (r *RunReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteReportFile writes the report to path (0644).
func WriteReportFile(path string, r *RunReport) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadReport parses and validates a report, enforcing the version
// compatibility rule (a reader rejects versions newer than it knows).
func ReadReport(rd io.Reader) (*RunReport, error) {
	var r RunReport
	dec := json.NewDecoder(rd)
	if err := dec.Decode(&r); err != nil {
		return nil, fmt.Errorf("metrics: malformed report: %w", err)
	}
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return &r, nil
}

// ReadReportFile reads and validates a report from path.
func ReadReportFile(path string) (*RunReport, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadReport(f)
}

// ErrNoCollector is reported by live endpoints when no collector is active.
var ErrNoCollector = errors.New("metrics: no active collector")
