// Package pipeline implements the two message-generation schemes of §IV-C.
//
// Locking: every thread runs the user's generate function for its vertices
// and inserts the resulting messages straight into the message buffer; the
// buffer's per-column critical section is paid per message, and collides
// when two threads target the same destination column.
//
// Pipelined: threads are split into workers and movers. Workers generate
// messages into private SPSC queues — one queue per (worker, mover) pair —
// choosing the queue by destination class (dst mod movers). Mover m drains
// queue class m of every worker and inserts into the buffer. Because all
// messages for a destination flow through exactly one mover, a buffer
// column is only ever touched by one thread, and no per-insert locking is
// needed; computation and memory traffic overlap across the two stages.
//
// The worker→mover handoff runs at a configurable batch granularity:
// workers accumulate one small local buffer per mover class and flush it
// through queue.PushBatch when it reaches the batch size (and at every
// scheduler range boundary, so movers never wait on a half-filled buffer
// across a scheduling gap); movers drain whole batches with queue.PopBatch
// and hand them to a BatchSink. Batch size 1 reproduces the paper's
// per-element handoff exactly. See docs/pipeline.md for the full design.
package pipeline

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"hetgraph/internal/graph"
	"hetgraph/internal/queue"
	"hetgraph/internal/sched"
)

// Message is one in-flight value pair <dst_id, msg_value>.
type Message[T any] struct {
	Dst graph.VertexID
	Val T
}

// Gen is the application's message-generation callback: it must call emit
// for every message vertex v sends (the paper's send_messages primitive
// inside generate_messages).
type Gen[T any] func(v graph.VertexID, emit func(dst graph.VertexID, val T))

// BatchSink receives one drained batch of messages. It is called only by
// the single mover that owns every destination in the batch (all dsts share
// one class, dst mod movers), so it may insert without locking. The slices
// are scratch buffers reused by the mover after the call returns and must
// not be retained.
type BatchSink[T any] func(dsts []graph.VertexID, vals []T)

// Stats reports what a generation run actually did; the cost model prices
// these events.
type Stats struct {
	// Messages generated (== edges traversed for the evaluated apps).
	Messages int64
	// TaskFetches performed against the dynamic scheduler.
	TaskFetches int64
	// QueueOps counts per-element SPSC cursor publications under the
	// pipelined scheme with batch size 1. Every message is pushed exactly
	// once by its worker and popped exactly once by its class's mover, so
	// QueueOps == 2*Messages by construction — the value is derived from
	// that identity, not counted separately. Zero for the locking scheme
	// and for batched runs.
	QueueOps int64
	// QueueBatchOps counts batched cursor publications — PushBatch/PopBatch
	// calls that moved at least one message — under the pipelined scheme
	// with batch size > 1. Each publication amortizes the release/acquire
	// handshake over up to the batch size in messages, which is why the
	// cost model prices these far below per-element ops.
	QueueBatchOps int64
}

// queueCap is the per-(worker,mover) ring capacity. Small enough that
// backpressure engages when movers lag, large enough to amortize handoff.
const queueCap = 1024

// DefaultBatch is the recommended handoff batch size for batched pipelined
// runs: large enough to amortize the cursor handshake ~64x, small enough
// that a worker's per-class buffers stay cache-resident and movers are
// never starved for long. The autotuner searches around this value.
const DefaultBatch = 64

// RunLocking generates messages for the active vertices on `threads`
// goroutines, inserting each message immediately through insert, which must
// be safe for concurrent use (the CSB's locking path).
func RunLocking[T any](active []graph.VertexID, threads int, gen Gen[T], insert func(graph.VertexID, T)) (Stats, error) {
	if threads < 1 {
		return Stats{}, fmt.Errorf("pipeline: threads %d < 1", threads)
	}
	s, err := sched.New(int64(len(active)), sched.ChunkFor(int64(len(active)), threads))
	if err != nil {
		return Stats{}, err
	}
	var msgs atomic.Int64
	var wg sync.WaitGroup
	var pc PanicCollector
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer pc.Capture()
			var local int64
			emit := func(dst graph.VertexID, val T) {
				insert(dst, val)
				local++
			}
			for {
				lo, hi, ok := s.Next()
				if !ok {
					break
				}
				for i := lo; i < hi; i++ {
					gen(active[i], emit)
				}
			}
			msgs.Add(local)
		}()
	}
	wg.Wait()
	if err := pc.Err(); err != nil {
		return Stats{}, err
	}
	return Stats{Messages: msgs.Load(), TaskFetches: s.Fetches()}, nil
}

// PanicCollector contains panics escaping user functions on worker
// goroutines: without it, a panicking generate_messages would kill the
// process (or deadlock the movers waiting for workers that died). The first
// panic is kept and surfaced as an error from the generation call. The
// engines reuse it to guard their process/update goroutine pools.
type PanicCollector struct {
	once sync.Once
	val  atomic.Value
}

// Capture must be deferred in each goroutine that runs user code.
func (p *PanicCollector) Capture() {
	if r := recover(); r != nil {
		p.once.Do(func() { p.val.Store(fmt.Sprintf("%v", r)) })
	}
}

// Err returns the captured panic as an error, or nil.
func (p *PanicCollector) Err() error {
	if v := p.val.Load(); v != nil {
		return fmt.Errorf("pipeline: user function panicked: %s", v)
	}
	return nil
}

// Pipelined is a reusable worker/mover generation engine: the SPSC queue
// matrix is allocated once and reused across iterations (queues are empty
// between runs, so reuse is safe).
type Pipelined[T any] struct {
	workers, movers, batch int
	// queues[w][m] is written only by worker w and read only by mover m.
	queues [][]*queue.SPSC[Message[T]]
}

// NewPipelined allocates the engine for a fixed worker/mover split and
// handoff batch size (1 = the paper's per-element handoff).
func NewPipelined[T any](workers, movers, batch int) (*Pipelined[T], error) {
	if workers < 1 || movers < 1 {
		return nil, fmt.Errorf("pipeline: need >=1 worker and mover, got %d/%d", workers, movers)
	}
	if batch < 1 {
		return nil, fmt.Errorf("pipeline: batch size %d < 1", batch)
	}
	p := &Pipelined[T]{workers: workers, movers: movers, batch: batch}
	p.queues = make([][]*queue.SPSC[Message[T]], workers)
	for w := range p.queues {
		p.queues[w] = make([]*queue.SPSC[Message[T]], movers)
		for m := range p.queues[w] {
			q, err := queue.NewSPSC[Message[T]](queueCap)
			if err != nil {
				return nil, err
			}
			p.queues[w][m] = q
		}
	}
	return p, nil
}

// Batch returns the engine's handoff batch size.
func (p *Pipelined[T]) Batch() int { return p.batch }

// RunPipelined is the one-shot per-element form of Pipelined.Run.
func RunPipelined[T any](active []graph.VertexID, workers, movers int, gen Gen[T], insertOwned func(graph.VertexID, T)) (Stats, error) {
	p, err := NewPipelined[T](workers, movers, 1)
	if err != nil {
		return Stats{}, err
	}
	return p.Run(active, gen, insertOwned)
}

// RunPipelinedBatched is the one-shot form of Pipelined.RunBatched.
func RunPipelinedBatched[T any](active []graph.VertexID, workers, movers, batch int, gen Gen[T], sink BatchSink[T]) (Stats, error) {
	p, err := NewPipelined[T](workers, movers, batch)
	if err != nil {
		return Stats{}, err
	}
	return p.RunBatched(active, gen, sink)
}

// Run generates messages with the engine's worker and mover goroutines,
// delivering them one at a time: insertOwned is called only by the single
// mover that owns the destination's class (dst mod movers), so it may be
// lock-free; column allocation inside the buffer remains the only
// synchronized operation, exactly as in §IV-C.
func (p *Pipelined[T]) Run(active []graph.VertexID, gen Gen[T], insertOwned func(graph.VertexID, T)) (Stats, error) {
	return p.run(active, gen, func(dsts []graph.VertexID, vals []T) {
		for i, dst := range dsts {
			insertOwned(dst, vals[i])
		}
	})
}

// RunBatched generates messages and delivers them to sink in whole drained
// batches, enabling batch-insert paths in the message buffer.
func (p *Pipelined[T]) RunBatched(active []graph.VertexID, gen Gen[T], sink BatchSink[T]) (Stats, error) {
	return p.run(active, gen, sink)
}

func (p *Pipelined[T]) run(active []graph.VertexID, gen Gen[T], sink BatchSink[T]) (Stats, error) {
	workers, movers, batch, queues := p.workers, p.movers, p.batch, p.queues
	s, err := sched.New(int64(len(active)), sched.ChunkFor(int64(len(active)), workers))
	if err != nil {
		return Stats{}, err
	}
	var (
		msgs        atomic.Int64
		pubs        atomic.Int64
		workersLeft atomic.Int64
		wg          sync.WaitGroup
		pc          PanicCollector
	)
	workersLeft.Store(int64(workers))

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer workersLeft.Add(-1)
			defer pc.Capture()
			mine := queues[w]
			// Per-mover-class accumulation buffers: the ring cursors are
			// published once per flush instead of once per message.
			bufs := make([][]Message[T], movers)
			for m := range bufs {
				bufs[m] = make([]Message[T], 0, batch)
			}
			var local, localPubs int64
			flush := func(m int) {
				if len(bufs[m]) == 0 {
					return
				}
				localPubs += int64(mine[m].PushBatch(bufs[m]))
				bufs[m] = bufs[m][:0]
			}
			emit := func(dst graph.VertexID, val T) {
				// "queue_id = dst_id mod num_mover_threads"
				m := int(dst) % movers
				bufs[m] = append(bufs[m], Message[T]{Dst: dst, Val: val})
				if len(bufs[m]) >= batch {
					flush(m)
				}
				local++
			}
			for {
				lo, hi, ok := s.Next()
				if !ok {
					break
				}
				for i := lo; i < hi; i++ {
					gen(active[i], emit)
				}
				// Range boundary: flush every class so buffered messages
				// never sit behind a scheduling gap. The flushes also keep
				// the workersLeft decrement (deferred above) ordered after
				// the last push, which the movers' final drain relies on.
				for m := range bufs {
					flush(m)
				}
			}
			msgs.Add(local)
			pubs.Add(localPubs)
		}(w)
	}

	for m := 0; m < movers; m++ {
		wg.Add(1)
		go func(m int) {
			defer wg.Done()
			discard := func() {
				for w := 0; w < workers; w++ {
					for {
						if _, ok := queues[w][m].TryPop(); !ok {
							break
						}
					}
				}
			}
			func() {
				defer pc.Capture()
				scratch := make([]Message[T], batch)
				dsts := make([]graph.VertexID, batch)
				vals := make([]T, batch)
				var localPubs int64
				defer func() { pubs.Add(localPubs) }()
				drain := func() int64 {
					var n int64
					for w := 0; w < workers; w++ {
						q := queues[w][m]
						for {
							k := q.PopBatch(scratch)
							if k == 0 {
								break
							}
							localPubs++
							for i := 0; i < k; i++ {
								dsts[i] = scratch[i].Dst
								vals[i] = scratch[i].Val
							}
							sink(dsts[:k], vals[:k])
							n += int64(k)
						}
					}
					return n
				}
				for {
					if drain() > 0 {
						continue
					}
					if workersLeft.Load() == 0 {
						// Workers finished before our empty sweep; one final
						// drain observes all their pushes (the counter
						// decrement is ordered after the last flush).
						drain()
						return
					}
					runtime.Gosched()
				}
			}()
			// Reached after a normal return (queues already empty) or a
			// panic in the sink. In the panic case, keep discarding this
			// mover's classes so no worker blocks forever on a full ring.
			for workersLeft.Load() != 0 {
				discard()
				runtime.Gosched()
			}
			discard()
		}(m)
	}
	wg.Wait()
	if err := pc.Err(); err != nil {
		// Drain any residue so the queues are clean for the next run.
		for w := range queues {
			for m := range queues[w] {
				for {
					if _, ok := queues[w][m].TryPop(); !ok {
						break
					}
				}
			}
		}
		return Stats{}, err
	}
	st := Stats{Messages: msgs.Load(), TaskFetches: s.Fetches()}
	if batch == 1 {
		// Per-element handoff: one push and one pop per message, so the op
		// count is an identity, not something to count at runtime.
		st.QueueOps = 2 * st.Messages
	} else {
		st.QueueBatchOps = pubs.Load()
	}
	return st, nil
}
