// Package pipeline implements the two message-generation schemes of §IV-C.
//
// Locking: every thread runs the user's generate function for its vertices
// and inserts the resulting messages straight into the message buffer; the
// buffer's per-column critical section is paid per message, and collides
// when two threads target the same destination column.
//
// Pipelined: threads are split into workers and movers. Workers generate
// messages into private SPSC queues — one queue per (worker, mover) pair —
// choosing the queue by destination class (dst mod movers). Mover m drains
// queue class m of every worker and inserts into the buffer. Because all
// messages for a destination flow through exactly one mover, a buffer
// column is only ever touched by one thread, and no per-insert locking is
// needed; computation and memory traffic overlap across the two stages.
package pipeline

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"hetgraph/internal/graph"
	"hetgraph/internal/queue"
	"hetgraph/internal/sched"
)

// Message is one in-flight value pair <dst_id, msg_value>.
type Message[T any] struct {
	Dst graph.VertexID
	Val T
}

// Gen is the application's message-generation callback: it must call emit
// for every message vertex v sends (the paper's send_messages primitive
// inside generate_messages).
type Gen[T any] func(v graph.VertexID, emit func(dst graph.VertexID, val T))

// Stats reports what a generation run actually did; the cost model prices
// these events.
type Stats struct {
	// Messages generated (== edges traversed for the evaluated apps).
	Messages int64
	// TaskFetches performed against the dynamic scheduler.
	TaskFetches int64
	// QueueOps is SPSC pushes plus pops (pipelined scheme only).
	QueueOps int64
}

// queueCap is the per-(worker,mover) ring capacity. Small enough that
// backpressure engages when movers lag, large enough to amortize handoff.
const queueCap = 1024

// RunLocking generates messages for the active vertices on `threads`
// goroutines, inserting each message immediately through insert, which must
// be safe for concurrent use (the CSB's locking path).
func RunLocking[T any](active []graph.VertexID, threads int, gen Gen[T], insert func(graph.VertexID, T)) (Stats, error) {
	if threads < 1 {
		return Stats{}, fmt.Errorf("pipeline: threads %d < 1", threads)
	}
	s, err := sched.New(int64(len(active)), sched.ChunkFor(int64(len(active)), threads))
	if err != nil {
		return Stats{}, err
	}
	var msgs atomic.Int64
	var wg sync.WaitGroup
	var pc panicCollector
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer pc.capture()
			var local int64
			emit := func(dst graph.VertexID, val T) {
				insert(dst, val)
				local++
			}
			for {
				lo, hi, ok := s.Next()
				if !ok {
					break
				}
				for i := lo; i < hi; i++ {
					gen(active[i], emit)
				}
			}
			msgs.Add(local)
		}()
	}
	wg.Wait()
	if err := pc.err(); err != nil {
		return Stats{}, err
	}
	return Stats{Messages: msgs.Load(), TaskFetches: s.Fetches()}, nil
}

// panicCollector contains panics escaping user functions on worker
// goroutines: without it, a panicking generate_messages would kill the
// process (or deadlock the movers waiting for workers that died). The first
// panic is kept and surfaced as an error from the generation call.
type panicCollector struct {
	once sync.Once
	val  atomic.Value
}

// capture must be deferred in each goroutine that runs user code.
func (p *panicCollector) capture() {
	if r := recover(); r != nil {
		p.once.Do(func() { p.val.Store(fmt.Sprintf("%v", r)) })
	}
}

// err returns the captured panic as an error, or nil.
func (p *panicCollector) err() error {
	if v := p.val.Load(); v != nil {
		return fmt.Errorf("pipeline: user function panicked: %s", v)
	}
	return nil
}

// Pipelined is a reusable worker/mover generation engine: the SPSC queue
// matrix is allocated once and reused across iterations (queues are empty
// between runs, so reuse is safe).
type Pipelined[T any] struct {
	workers, movers int
	// queues[w][m] is written only by worker w and read only by mover m.
	queues [][]*queue.SPSC[Message[T]]
}

// NewPipelined allocates the engine for a fixed worker/mover split.
func NewPipelined[T any](workers, movers int) (*Pipelined[T], error) {
	if workers < 1 || movers < 1 {
		return nil, fmt.Errorf("pipeline: need >=1 worker and mover, got %d/%d", workers, movers)
	}
	p := &Pipelined[T]{workers: workers, movers: movers}
	p.queues = make([][]*queue.SPSC[Message[T]], workers)
	for w := range p.queues {
		p.queues[w] = make([]*queue.SPSC[Message[T]], movers)
		for m := range p.queues[w] {
			q, err := queue.NewSPSC[Message[T]](queueCap)
			if err != nil {
				return nil, err
			}
			p.queues[w][m] = q
		}
	}
	return p, nil
}

// RunPipelined is the one-shot form of Pipelined.Run.
func RunPipelined[T any](active []graph.VertexID, workers, movers int, gen Gen[T], insertOwned func(graph.VertexID, T)) (Stats, error) {
	p, err := NewPipelined[T](workers, movers)
	if err != nil {
		return Stats{}, err
	}
	return p.Run(active, gen, insertOwned)
}

// Run generates messages with the engine's worker goroutines and mover
// goroutines. insertOwned is called only by the single mover that owns the
// destination's class (dst mod movers), so it may be lock-free; column
// allocation inside the buffer remains the only synchronized operation,
// exactly as in §IV-C.
func (p *Pipelined[T]) Run(active []graph.VertexID, gen Gen[T], insertOwned func(graph.VertexID, T)) (Stats, error) {
	workers, movers, queues := p.workers, p.movers, p.queues
	s, err := sched.New(int64(len(active)), sched.ChunkFor(int64(len(active)), workers))
	if err != nil {
		return Stats{}, err
	}
	var (
		msgs        atomic.Int64
		pops        atomic.Int64
		workersLeft atomic.Int64
		wg          sync.WaitGroup
		pc          panicCollector
	)
	workersLeft.Store(int64(workers))

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer workersLeft.Add(-1)
			defer pc.capture()
			mine := queues[w]
			var local int64
			emit := func(dst graph.VertexID, val T) {
				// "queue_id = dst_id mod num_mover_threads"
				mine[int(dst)%movers].Push(Message[T]{Dst: dst, Val: val})
				local++
			}
			for {
				lo, hi, ok := s.Next()
				if !ok {
					break
				}
				for i := lo; i < hi; i++ {
					gen(active[i], emit)
				}
			}
			msgs.Add(local)
		}(w)
	}

	for m := 0; m < movers; m++ {
		wg.Add(1)
		go func(m int) {
			defer wg.Done()
			discard := func() {
				for w := 0; w < workers; w++ {
					for {
						if _, ok := queues[w][m].TryPop(); !ok {
							break
						}
					}
				}
			}
			func() {
				defer pc.capture()
				drain := func() int64 {
					var n int64
					for w := 0; w < workers; w++ {
						q := queues[w][m]
						for {
							msg, ok := q.TryPop()
							if !ok {
								break
							}
							insertOwned(msg.Dst, msg.Val)
							n++
						}
					}
					return n
				}
				for {
					if drain() > 0 {
						continue
					}
					if workersLeft.Load() == 0 {
						// Workers finished before our empty sweep; one final
						// drain observes all their pushes (the counter
						// decrement is ordered after the last push).
						drain()
						return
					}
					runtime.Gosched()
				}
			}()
			// Reached after a normal return (queues already empty) or a
			// panic in insertOwned. In the panic case, keep discarding this
			// mover's classes so no worker blocks forever on a full ring.
			for workersLeft.Load() != 0 {
				discard()
				runtime.Gosched()
			}
			discard()
		}(m)
	}
	wg.Wait()
	if err := pc.err(); err != nil {
		// Drain any residue so the queues are clean for the next run.
		for w := range queues {
			for m := range queues[w] {
				for {
					if _, ok := queues[w][m].TryPop(); !ok {
						break
					}
				}
			}
		}
		return Stats{}, err
	}
	pops.Store(msgs.Load()) // every pushed message was popped exactly once
	return Stats{
		Messages:    msgs.Load(),
		TaskFetches: s.Fetches(),
		QueueOps:    msgs.Load() + pops.Load(),
	}, nil
}
