package pipeline

import (
	"math"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"hetgraph/internal/csb"
	"hetgraph/internal/graph"
)

// fanoutGen emits one message per out-edge of v, value = float32(v).
func fanoutGen(g *graph.CSR) Gen[float32] {
	return func(v graph.VertexID, emit func(graph.VertexID, float32)) {
		for _, d := range g.Neighbors(v) {
			emit(d, float32(v))
		}
	}
}

func allVertices(n int) []graph.VertexID {
	vs := make([]graph.VertexID, n)
	for i := range vs {
		vs[i] = graph.VertexID(i)
	}
	return vs
}

func TestRunLockingValidation(t *testing.T) {
	if _, err := RunLocking[float32](nil, 0, nil, nil); err == nil {
		t.Error("accepted zero threads")
	}
}

func TestRunPipelinedValidation(t *testing.T) {
	if _, err := RunPipelined[float32](nil, 0, 1, nil, nil); err == nil {
		t.Error("accepted zero workers")
	}
	if _, err := RunPipelined[float32](nil, 1, 0, nil, nil); err == nil {
		t.Error("accepted zero movers")
	}
}

func TestLockingGeneratesAllMessages(t *testing.T) {
	g := graph.PaperExample()
	var mu sync.Mutex
	received := map[graph.VertexID][]float32{}
	stats, err := RunLocking(allVertices(16), 4, fanoutGen(g), func(dst graph.VertexID, v float32) {
		mu.Lock()
		received[dst] = append(received[dst], v)
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Messages != 28 {
		t.Fatalf("Messages = %d, want 28 (every edge)", stats.Messages)
	}
	if stats.TaskFetches < 1 {
		t.Error("no task fetches recorded")
	}
	if stats.QueueOps != 0 {
		t.Error("locking scheme recorded queue ops")
	}
	in := g.InDegrees()
	for v := 0; v < 16; v++ {
		if len(received[graph.VertexID(v)]) != int(in[v]) {
			t.Errorf("vertex %d received %d, want %d", v, len(received[graph.VertexID(v)]), in[v])
		}
	}
}

func TestPipelinedGeneratesAllMessages(t *testing.T) {
	g := graph.PaperExample()
	const movers = 3
	// Per-mover receive logs; no locks, validating the ownership contract.
	received := make([]map[graph.VertexID]int, 16)
	for i := range received {
		received[i] = map[graph.VertexID]int{}
	}
	var mu [movers]sync.Mutex // only guards test bookkeeping per mover class
	stats, err := RunPipelined(allVertices(16), 5, movers, fanoutGen(g), func(dst graph.VertexID, v float32) {
		c := int(dst) % movers
		mu[c].Lock()
		received[dst][dst]++
		mu[c].Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Messages != 28 {
		t.Fatalf("Messages = %d, want 28", stats.Messages)
	}
	if stats.QueueOps != 56 {
		t.Fatalf("QueueOps = %d, want 56 (28 pushes + 28 pops)", stats.QueueOps)
	}
	in := g.InDegrees()
	for v := 0; v < 16; v++ {
		if received[v][graph.VertexID(v)] != int(in[v]) {
			t.Errorf("vertex %d received %d, want %d", v, received[v][graph.VertexID(v)], in[v])
		}
	}
}

func TestPipelinedDestinationOwnership(t *testing.T) {
	// Record which goroutine inserts each destination class; each class
	// must be touched by exactly one mover. We detect violations by
	// checking data-race-free counters per class without synchronization
	// under -race.
	g, err := gridGraph(40)
	if err != nil {
		t.Fatal(err)
	}
	const movers = 4
	counts := make([]int64, movers) // indexed by dst%movers, no locks: SPSC ownership must protect this
	_, err = RunPipelined(allVertices(g.NumVertices()), 6, movers, fanoutGen(g), func(dst graph.VertexID, v float32) {
		counts[int(dst)%movers]++
	})
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, c := range counts {
		total += c
	}
	if total != g.NumEdges() {
		t.Fatalf("inserted %d, want %d", total, g.NumEdges())
	}
}

// gridGraph builds an n x n 4-neighbor grid (deterministic, mid-size).
func gridGraph(n int) (*graph.CSR, error) {
	b := graph.NewBuilder(n*n, false)
	id := func(r, c int) graph.VertexID { return graph.VertexID(r*n + c) }
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			if r+1 < n {
				b.AddEdge(id(r, c), id(r+1, c), 0)
			}
			if c+1 < n {
				b.AddEdge(id(r, c), id(r, c+1), 0)
			}
		}
	}
	return b.Build()
}

func TestPipelinedIntoCSBMatchesLocking(t *testing.T) {
	// End-to-end: both schemes must produce identical reductions in the
	// real CSB.
	cfgGraph := graph.PaperExample()
	inf := float32(math.Inf(1))
	build := func() *csb.Buffer {
		b, err := csb.Build(cfgGraph, csb.Config{Width: 4, K: 2, Identity: inf, Mode: csb.Dynamic})
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	genFn := func(v graph.VertexID, emit func(graph.VertexID, float32)) {
		for i, d := range cfgGraph.Neighbors(v) {
			emit(d, float32(v)*10+float32(i))
		}
	}
	lockBuf := build()
	if _, err := RunLocking(allVertices(16), 4, genFn, lockBuf.Insert); err != nil {
		t.Fatal(err)
	}
	pipeBuf := build()
	if _, err := RunPipelined(allVertices(16), 3, 2, genFn, pipeBuf.Insert); err != nil {
		t.Fatal(err)
	}
	redLock := reduceMinAll(lockBuf)
	redPipe := reduceMinAll(pipeBuf)
	if len(redLock) != len(redPipe) {
		t.Fatalf("destination sets differ: %d vs %d", len(redLock), len(redPipe))
	}
	for v, want := range redLock {
		if redPipe[v] != want {
			t.Errorf("vertex %d: pipe %v, lock %v", v, redPipe[v], want)
		}
	}
}

func reduceMinAll(b *csb.Buffer) map[graph.VertexID]float32 {
	out := map[graph.VertexID]float32{}
	var lanes []csb.Lane
	for t := 0; t < b.NumTasks(); t++ {
		arr, rows := b.Task(t)
		if rows == 0 {
			continue
		}
		arr.ReduceMin(rows)
		lanes = b.Lanes(t, lanes[:0])
		for _, l := range lanes {
			out[l.Vertex] = arr.At(0, l.Lane)
		}
	}
	return out
}

func TestEmptyActiveSet(t *testing.T) {
	for _, scheme := range []string{"lock", "pipe"} {
		var stats Stats
		var err error
		insert := func(graph.VertexID, float32) { t.Error("insert called with no active vertices") }
		if scheme == "lock" {
			stats, err = RunLocking(nil, 4, fanoutGen(graph.PaperExample()), insert)
		} else {
			stats, err = RunPipelined(nil, 4, 2, fanoutGen(graph.PaperExample()), insert)
		}
		if err != nil {
			t.Fatal(err)
		}
		if stats.Messages != 0 {
			t.Errorf("%s: messages = %d", scheme, stats.Messages)
		}
	}
}

func TestBackpressureStress(t *testing.T) {
	// Many messages to few destinations through tiny mover capacity: the
	// rings must wrap many times without losing messages.
	if testing.Short() {
		t.Skip("stress test")
	}
	n := 400
	b := graph.NewBuilder(n, false)
	rng := rand.New(rand.NewSource(3))
	for v := 0; v < n; v++ {
		for k := 0; k < 50; k++ {
			b.AddEdge(graph.VertexID(v), graph.VertexID(rng.Intn(8)), 0) // 8 hot destinations
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	var counts [8]int64
	stats, err := RunPipelined(allVertices(n), 8, 2, fanoutGen(g), func(dst graph.VertexID, v float32) {
		counts[dst]++
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Messages != int64(n*50) {
		t.Fatalf("Messages = %d, want %d", stats.Messages, n*50)
	}
	var sum int64
	for _, c := range counts {
		sum += c
	}
	if sum != int64(n*50) {
		t.Fatalf("delivered %d, want %d", sum, n*50)
	}
}

func TestLockingContainsUserPanic(t *testing.T) {
	g := graph.PaperExample()
	genFn := func(v graph.VertexID, emit func(graph.VertexID, float32)) {
		if v == 9 {
			panic("boom at vertex 9")
		}
		for _, d := range g.Neighbors(v) {
			emit(d, 0)
		}
	}
	_, err := RunLocking(allVertices(16), 4, genFn, func(graph.VertexID, float32) {})
	if err == nil {
		t.Fatal("panic not surfaced as error")
	}
	if !strings.Contains(err.Error(), "boom at vertex 9") {
		t.Fatalf("error lost panic message: %v", err)
	}
}

func TestPipelinedContainsWorkerPanic(t *testing.T) {
	g := graph.PaperExample()
	genFn := func(v graph.VertexID, emit func(graph.VertexID, float32)) {
		if v == 5 {
			panic("worker boom")
		}
		for _, d := range g.Neighbors(v) {
			emit(d, 0)
		}
	}
	_, err := RunPipelined(allVertices(16), 3, 2, genFn, func(graph.VertexID, float32) {})
	if err == nil || !strings.Contains(err.Error(), "worker boom") {
		t.Fatalf("worker panic not surfaced: %v", err)
	}
}

func TestPipelinedContainsMoverPanic(t *testing.T) {
	// A panicking insertOwned (mover side) must not deadlock the workers,
	// even under enough message volume to fill the rings.
	n := 300
	b := graph.NewBuilder(n, false)
	for v := 0; v < n; v++ {
		for k := 0; k < 40; k++ {
			b.AddEdge(graph.VertexID(v), graph.VertexID((v+k+1)%n), 0)
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	var count atomic.Int64
	insert := func(dst graph.VertexID, _ float32) {
		if count.Add(1) == 100 {
			panic("mover boom")
		}
	}
	_, err = RunPipelined(allVertices(n), 4, 2, fanoutGen(g), insert)
	if err == nil || !strings.Contains(err.Error(), "mover boom") {
		t.Fatalf("mover panic not surfaced: %v", err)
	}
}

func TestNewPipelinedRejectsBadBatch(t *testing.T) {
	if _, err := NewPipelined[float32](2, 2, 0); err == nil {
		t.Error("accepted batch size 0")
	}
	if _, err := NewPipelined[float32](2, 2, -4); err == nil {
		t.Error("accepted negative batch size")
	}
}

func TestBatchedGeneratesAllMessages(t *testing.T) {
	g := graph.PaperExample()
	const movers = 3
	received := make(map[graph.VertexID]int, 16)
	var mu sync.Mutex
	stats, err := RunPipelinedBatched(allVertices(16), 5, movers, 4, fanoutGen(g), func(dsts []graph.VertexID, vals []float32) {
		if len(dsts) != len(vals) {
			t.Errorf("batch slices disagree: %d dsts, %d vals", len(dsts), len(vals))
		}
		mu.Lock()
		for i, dst := range dsts {
			if int(dst)%movers != int(dsts[0])%movers {
				t.Errorf("batch mixes mover classes: dst %d with dst %d", dst, dsts[0])
			}
			_ = vals[i]
			received[dst]++
		}
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Messages != 28 {
		t.Fatalf("Messages = %d, want 28", stats.Messages)
	}
	if stats.QueueOps != 0 {
		t.Errorf("batched run reported per-element QueueOps = %d", stats.QueueOps)
	}
	if stats.QueueBatchOps < 1 {
		t.Errorf("batched run reported no batch publications")
	}
	if stats.QueueBatchOps >= 2*stats.Messages {
		t.Errorf("QueueBatchOps = %d, not cheaper than per-element 2*Messages = %d", stats.QueueBatchOps, 2*stats.Messages)
	}
	in := g.InDegrees()
	for v := 0; v < 16; v++ {
		if received[graph.VertexID(v)] != int(in[v]) {
			t.Errorf("vertex %d received %d, want %d", v, received[graph.VertexID(v)], in[v])
		}
	}
}

func TestBatchedAmortizesPublications(t *testing.T) {
	// On a heavy workload, batched cursor publications must be a small
	// fraction of the per-element count — that is the whole point.
	g, err := gridGraph(60)
	if err != nil {
		t.Fatal(err)
	}
	const batch = 64
	var delivered atomic.Int64
	stats, err := RunPipelinedBatched(allVertices(g.NumVertices()), 4, 2, batch, fanoutGen(g), func(dsts []graph.VertexID, vals []float32) {
		delivered.Add(int64(len(dsts)))
	})
	if err != nil {
		t.Fatal(err)
	}
	if delivered.Load() != stats.Messages {
		t.Fatalf("delivered %d, stats say %d", delivered.Load(), stats.Messages)
	}
	perElement := 2 * stats.Messages
	if stats.QueueBatchOps*4 > perElement {
		t.Errorf("QueueBatchOps = %d, want < 1/4 of per-element %d", stats.QueueBatchOps, perElement)
	}
}

func TestBatchedIntoCSBMatchesLocking(t *testing.T) {
	cfgGraph := graph.PaperExample()
	inf := float32(math.Inf(1))
	build := func() *csb.Buffer {
		b, err := csb.Build(cfgGraph, csb.Config{Width: 4, K: 2, Identity: inf, Mode: csb.Dynamic})
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	genFn := func(v graph.VertexID, emit func(graph.VertexID, float32)) {
		for i, d := range cfgGraph.Neighbors(v) {
			emit(d, float32(v)*10+float32(i))
		}
	}
	lockBuf := build()
	if _, err := RunLocking(allVertices(16), 4, genFn, lockBuf.Insert); err != nil {
		t.Fatal(err)
	}
	batchBuf := build()
	if _, err := RunPipelinedBatched(allVertices(16), 3, 2, 8, genFn, batchBuf.InsertOwnedBatch); err != nil {
		t.Fatal(err)
	}
	redLock := reduceMinAll(lockBuf)
	redBatch := reduceMinAll(batchBuf)
	if len(redLock) != len(redBatch) {
		t.Fatalf("destination sets differ: %d vs %d", len(redLock), len(redBatch))
	}
	for v, want := range redLock {
		if redBatch[v] != want {
			t.Errorf("vertex %d: batched %v, lock %v", v, redBatch[v], want)
		}
	}
}

func TestBatchedContainsSinkPanic(t *testing.T) {
	// A panicking sink (mover side) must not deadlock the workers under
	// batched handoff, even with enough volume to fill the rings.
	n := 300
	b := graph.NewBuilder(n, false)
	for v := 0; v < n; v++ {
		for k := 0; k < 40; k++ {
			b.AddEdge(graph.VertexID(v), graph.VertexID((v+k+1)%n), 0)
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	var count atomic.Int64
	sink := func(dsts []graph.VertexID, _ []float32) {
		if count.Add(int64(len(dsts))) >= 100 {
			panic("sink boom")
		}
	}
	_, err = RunPipelinedBatched(allVertices(n), 4, 2, 32, fanoutGen(g), sink)
	if err == nil || !strings.Contains(err.Error(), "sink boom") {
		t.Fatalf("sink panic not surfaced: %v", err)
	}
}

func TestBatchedReusableAfterPanic(t *testing.T) {
	g := graph.PaperExample()
	p, err := NewPipelined[float32](3, 2, 16)
	if err != nil {
		t.Fatal(err)
	}
	bad := func(v graph.VertexID, emit func(graph.VertexID, float32)) { panic("first run dies") }
	if _, err := p.RunBatched(allVertices(16), bad, func([]graph.VertexID, []float32) {}); err == nil {
		t.Fatal("no error from panicking run")
	}
	var delivered atomic.Int64
	stats, err := p.RunBatched(allVertices(16), fanoutGen(g), func(dsts []graph.VertexID, _ []float32) {
		delivered.Add(int64(len(dsts)))
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Messages != 28 || delivered.Load() != 28 {
		t.Fatalf("post-panic run delivered %d/%d, want 28/28", stats.Messages, delivered.Load())
	}
}

func TestPipelinedReusableAfterPanic(t *testing.T) {
	// The engine must be clean after a contained panic: a subsequent run
	// delivers exactly the expected messages.
	g := graph.PaperExample()
	p, err := NewPipelined[float32](3, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	bad := func(v graph.VertexID, emit func(graph.VertexID, float32)) { panic("first run dies") }
	if _, err := p.Run(allVertices(16), bad, func(graph.VertexID, float32) {}); err == nil {
		t.Fatal("no error from panicking run")
	}
	var delivered atomic.Int64
	stats, err := p.Run(allVertices(16), fanoutGen(g), func(graph.VertexID, float32) { delivered.Add(1) })
	if err != nil {
		t.Fatal(err)
	}
	if stats.Messages != 28 || delivered.Load() != 28 {
		t.Fatalf("post-panic run delivered %d/%d, want 28/28", stats.Messages, delivered.Load())
	}
}
