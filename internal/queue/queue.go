// Package queue provides the bounded single-producer single-consumer ring
// buffers that carry messages from worker threads to mover threads in the
// pipelined message-generation scheme (§IV-C). The pipelining design
// guarantees "each message queue is only written by only one thread, as well
// as read by only one thread", which is exactly the SPSC contract: the ring
// needs no locks, only two monotone cursors with release/acquire ordering.
//
// Two transfer granularities are offered. The per-element operations
// (TryPush/Push/TryPop) publish a cursor per message — one release store
// plus, on a miss, one acquire load, paid 2n times for n messages. The
// batched operations (TryPushBatch/PushBatch/PopBatch) move a run of
// elements under a single cursor publication, amortizing the cross-core
// handshake over the batch. Both sides additionally keep a *cached* copy of
// the opposite cursor (the producer caches head, the consumer caches tail)
// and only re-read the shared atomic when the cache says the ring looks
// full/empty, so an uncontended transfer touches the peer's cache line at
// most once per batch rather than once per element.
package queue

import (
	"fmt"
	"runtime"
	"sync/atomic"
)

// SPSC is a bounded lock-free single-producer single-consumer ring.
// Exactly one goroutine may call the push-side methods and exactly one may
// call the pop-side methods.
type SPSC[T any] struct {
	buf  []T
	mask uint64
	_    [40]byte // keep the cursor lines apart from the buffer header
	// Consumer-owned line: the consumer cursor plus the consumer's cached
	// copy of tail (only the consumer goroutine touches tailCache).
	head      atomic.Uint64
	tailCache uint64
	_         [48]byte
	// Producer-owned line: the producer cursor plus the producer's cached
	// copy of head (only the producer goroutine touches headCache).
	tail      atomic.Uint64
	headCache uint64
	_         [48]byte
}

// NewSPSC creates a ring with the given capacity, rounded up to a power of
// two (minimum 2).
func NewSPSC[T any](capacity int) (*SPSC[T], error) {
	if capacity < 1 {
		return nil, fmt.Errorf("queue: capacity %d < 1", capacity)
	}
	size := 2
	for size < capacity {
		size <<= 1
	}
	return &SPSC[T]{buf: make([]T, size), mask: uint64(size - 1)}, nil
}

// Cap returns the ring capacity.
func (q *SPSC[T]) Cap() int { return len(q.buf) }

// TryPush enqueues v if there is room, reporting success.
func (q *SPSC[T]) TryPush(v T) bool {
	tail := q.tail.Load()
	if tail-q.headCache >= uint64(len(q.buf)) {
		q.headCache = q.head.Load()
		if tail-q.headCache >= uint64(len(q.buf)) {
			return false
		}
	}
	q.buf[tail&q.mask] = v
	q.tail.Store(tail + 1)
	return true
}

// Push enqueues v, yielding the processor while the ring is full. This is
// the worker-side backpressure of the pipeline: when movers fall behind,
// workers stall, which the cost model charges to the slower stage.
func (q *SPSC[T]) Push(v T) {
	for !q.TryPush(v) {
		runtime.Gosched()
	}
}

// TryPushBatch enqueues a prefix of vs — as many elements as currently fit —
// and returns how many were enqueued. The tail cursor is published exactly
// once when anything was enqueued, and not at all otherwise.
func (q *SPSC[T]) TryPushBatch(vs []T) int {
	if len(vs) == 0 {
		return 0
	}
	tail := q.tail.Load()
	free := uint64(len(q.buf)) - (tail - q.headCache)
	if free < uint64(len(vs)) {
		q.headCache = q.head.Load()
		free = uint64(len(q.buf)) - (tail - q.headCache)
		if free == 0 {
			return 0
		}
	}
	n := len(vs)
	if uint64(n) > free {
		n = int(free)
	}
	start := int(tail & q.mask)
	copied := copy(q.buf[start:], vs[:n])
	if copied < n {
		copy(q.buf, vs[copied:n]) // wrap around the ring boundary
	}
	q.tail.Store(tail + uint64(n))
	return n
}

// PushBatch enqueues all of vs, yielding while the ring is full, and
// returns the number of cursor publications it performed — 1 when the whole
// batch fit at once, more when backpressure split it.
func (q *SPSC[T]) PushBatch(vs []T) int {
	pubs := 0
	for len(vs) > 0 {
		n := q.TryPushBatch(vs)
		if n == 0 {
			runtime.Gosched()
			continue
		}
		pubs++
		vs = vs[n:]
	}
	return pubs
}

// TryPop dequeues the oldest element, reporting whether one was available.
func (q *SPSC[T]) TryPop() (T, bool) {
	var zero T
	head := q.head.Load()
	if head == q.tailCache {
		q.tailCache = q.tail.Load()
		if head == q.tailCache {
			return zero, false
		}
	}
	v := q.buf[head&q.mask]
	q.buf[head&q.mask] = zero // release references for GC
	q.head.Store(head + 1)
	return v, true
}

// PopBatch dequeues up to len(dst) elements into dst and returns how many
// were dequeued. The head cursor is published exactly once when anything
// was dequeued. A return of 0 means the ring was empty (or dst was).
func (q *SPSC[T]) PopBatch(dst []T) int {
	if len(dst) == 0 {
		return 0
	}
	head := q.head.Load()
	avail := q.tailCache - head
	if avail < uint64(len(dst)) {
		q.tailCache = q.tail.Load()
		avail = q.tailCache - head
		if avail == 0 {
			return 0
		}
	}
	n := len(dst)
	if uint64(n) > avail {
		n = int(avail)
	}
	var zero T
	for i := 0; i < n; i++ {
		idx := (head + uint64(i)) & q.mask
		dst[i] = q.buf[idx]
		q.buf[idx] = zero // release references for GC
	}
	q.head.Store(head + uint64(n))
	return n
}

// Len returns the number of buffered elements (approximate under
// concurrency, exact when quiescent).
func (q *SPSC[T]) Len() int { return int(q.tail.Load() - q.head.Load()) }

// Empty reports whether the ring is empty.
func (q *SPSC[T]) Empty() bool { return q.Len() == 0 }
