// Package queue provides the bounded single-producer single-consumer ring
// buffers that carry messages from worker threads to mover threads in the
// pipelined message-generation scheme (§IV-C). The pipelining design
// guarantees "each message queue is only written by only one thread, as well
// as read by only one thread", which is exactly the SPSC contract: the ring
// needs no locks, only two monotone cursors with release/acquire ordering.
package queue

import (
	"fmt"
	"runtime"
	"sync/atomic"
)

// SPSC is a bounded lock-free single-producer single-consumer ring.
// Exactly one goroutine may call Push and exactly one may call Pop.
type SPSC[T any] struct {
	buf  []T
	mask uint64
	_    [48]byte // keep head and tail on separate cache lines
	head atomic.Uint64
	_    [56]byte
	tail atomic.Uint64
}

// NewSPSC creates a ring with the given capacity, rounded up to a power of
// two (minimum 2).
func NewSPSC[T any](capacity int) (*SPSC[T], error) {
	if capacity < 1 {
		return nil, fmt.Errorf("queue: capacity %d < 1", capacity)
	}
	size := 2
	for size < capacity {
		size <<= 1
	}
	return &SPSC[T]{buf: make([]T, size), mask: uint64(size - 1)}, nil
}

// Cap returns the ring capacity.
func (q *SPSC[T]) Cap() int { return len(q.buf) }

// TryPush enqueues v if there is room, reporting success.
func (q *SPSC[T]) TryPush(v T) bool {
	tail := q.tail.Load()
	if tail-q.head.Load() >= uint64(len(q.buf)) {
		return false
	}
	q.buf[tail&q.mask] = v
	q.tail.Store(tail + 1)
	return true
}

// Push enqueues v, yielding the processor while the ring is full. This is
// the worker-side backpressure of the pipeline: when movers fall behind,
// workers stall, which the cost model charges to the slower stage.
func (q *SPSC[T]) Push(v T) {
	for !q.TryPush(v) {
		runtime.Gosched()
	}
}

// TryPop dequeues the oldest element, reporting whether one was available.
func (q *SPSC[T]) TryPop() (T, bool) {
	var zero T
	head := q.head.Load()
	if head == q.tail.Load() {
		return zero, false
	}
	v := q.buf[head&q.mask]
	q.buf[head&q.mask] = zero // release references for GC
	q.head.Store(head + 1)
	return v, true
}

// Len returns the number of buffered elements (approximate under
// concurrency, exact when quiescent).
func (q *SPSC[T]) Len() int { return int(q.tail.Load() - q.head.Load()) }

// Empty reports whether the ring is empty.
func (q *SPSC[T]) Empty() bool { return q.Len() == 0 }
