package queue

import (
	"runtime"
	"sync"
	"testing"
	"testing/quick"
)

func TestNewSPSC(t *testing.T) {
	if _, err := NewSPSC[int](0); err == nil {
		t.Error("accepted capacity 0")
	}
	q, err := NewSPSC[int](5)
	if err != nil {
		t.Fatal(err)
	}
	if q.Cap() != 8 {
		t.Errorf("Cap = %d, want 8 (rounded up)", q.Cap())
	}
	q1, _ := NewSPSC[int](1)
	if q1.Cap() != 2 {
		t.Errorf("min cap = %d, want 2", q1.Cap())
	}
}

func TestFIFOOrder(t *testing.T) {
	q, _ := NewSPSC[int](8)
	for i := 0; i < 8; i++ {
		if !q.TryPush(i) {
			t.Fatalf("push %d failed", i)
		}
	}
	if q.TryPush(99) {
		t.Fatal("push into full ring succeeded")
	}
	if q.Len() != 8 || q.Empty() {
		t.Fatalf("Len = %d", q.Len())
	}
	for i := 0; i < 8; i++ {
		v, ok := q.TryPop()
		if !ok || v != i {
			t.Fatalf("pop %d = %v,%v", i, v, ok)
		}
	}
	if _, ok := q.TryPop(); ok {
		t.Fatal("pop from empty ring succeeded")
	}
	if !q.Empty() {
		t.Fatal("ring not empty")
	}
}

func TestWraparound(t *testing.T) {
	q, _ := NewSPSC[int](4)
	for round := 0; round < 100; round++ {
		for i := 0; i < 3; i++ {
			q.Push(round*10 + i)
		}
		for i := 0; i < 3; i++ {
			v, ok := q.TryPop()
			if !ok || v != round*10+i {
				t.Fatalf("round %d: pop = %v,%v", round, v, ok)
			}
		}
	}
}

func TestConcurrentProducerConsumer(t *testing.T) {
	q, _ := NewSPSC[int](64)
	const n = 50000
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			q.Push(i)
		}
	}()
	var sum, count int64
	go func() {
		defer wg.Done()
		expect := 0
		for count < n {
			v, ok := q.TryPop()
			if !ok {
				// On a single-core host, busy-spinning starves the
				// producer; yield instead.
				runtime.Gosched()
				continue
			}
			if v != expect {
				t.Errorf("out of order: got %d, want %d", v, expect)
				return
			}
			expect++
			sum += int64(v)
			count++
		}
	}()
	wg.Wait()
	if count != n {
		t.Fatalf("consumed %d, want %d", count, n)
	}
	if want := int64(n) * (n - 1) / 2; sum != want {
		t.Fatalf("sum = %d, want %d", sum, want)
	}
}

func TestGCRelease(t *testing.T) {
	q, _ := NewSPSC[*int](2)
	x := new(int)
	q.Push(x)
	q.TryPop()
	// The slot must have been cleared so the pointer is collectable.
	if q.buf[0] != nil {
		t.Fatal("popped slot still holds pointer")
	}
}

// property: any interleaved sequence of pushes and pops preserves FIFO and
// never loses or duplicates elements.
func TestQuickFIFO(t *testing.T) {
	f := func(ops []bool) bool {
		q, _ := NewSPSC[int](4)
		var model []int
		next := 0
		for _, push := range ops {
			if push {
				if q.TryPush(next) {
					model = append(model, next)
				}
				next++
			} else {
				v, ok := q.TryPop()
				if ok {
					if len(model) == 0 || model[0] != v {
						return false
					}
					model = model[1:]
				} else if len(model) != 0 {
					return false
				}
			}
			if q.Len() != len(model) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLenApproximationQuiescent(t *testing.T) {
	q, _ := NewSPSC[int](16)
	for i := 0; i < 5; i++ {
		q.Push(i)
	}
	if q.Len() != 5 {
		t.Fatalf("Len = %d", q.Len())
	}
	q.TryPop()
	q.TryPop()
	if q.Len() != 3 || q.Empty() {
		t.Fatalf("Len after pops = %d", q.Len())
	}
}

func TestBatchWraparound(t *testing.T) {
	// Batches that straddle the ring boundary must land contiguously in
	// FIFO order, on both the push and the pop side.
	q, _ := NewSPSC[int](8)
	next, expect := 0, 0
	dst := make([]int, 5)
	for round := 0; round < 50; round++ {
		batch := make([]int, 5)
		for i := range batch {
			batch[i] = next
			next++
		}
		if got := q.TryPushBatch(batch); got != 5 {
			t.Fatalf("round %d: pushed %d, want 5", round, got)
		}
		k := q.PopBatch(dst)
		if k != 5 {
			t.Fatalf("round %d: popped %d, want 5", round, k)
		}
		for _, v := range dst[:k] {
			if v != expect {
				t.Fatalf("round %d: got %d, want %d", round, v, expect)
			}
			expect++
		}
	}
}

func TestBatchPartialPushAndPop(t *testing.T) {
	q, _ := NewSPSC[int](8)
	big := make([]int, 12)
	for i := range big {
		big[i] = i
	}
	// Only the prefix that fits may be enqueued.
	if got := q.TryPushBatch(big); got != 8 {
		t.Fatalf("TryPushBatch = %d, want 8", got)
	}
	if q.TryPushBatch([]int{99}) != 0 {
		t.Fatal("push into full ring succeeded")
	}
	// Partial pop: a small destination takes only what it can hold.
	small := make([]int, 3)
	if k := q.PopBatch(small); k != 3 || small[0] != 0 || small[2] != 2 {
		t.Fatalf("PopBatch(small) = %d %v", k, small)
	}
	// Oversized destination drains what remains.
	rest := make([]int, 16)
	if k := q.PopBatch(rest); k != 5 || rest[0] != 3 || rest[4] != 7 {
		t.Fatalf("PopBatch(rest) = %d %v", k, rest[:5])
	}
	if !q.Empty() {
		t.Fatal("ring not empty after draining")
	}
}

func TestBatchZeroLength(t *testing.T) {
	q, _ := NewSPSC[int](4)
	if q.TryPushBatch(nil) != 0 {
		t.Error("TryPushBatch(nil) != 0")
	}
	if q.PushBatch(nil) != 0 {
		t.Error("PushBatch(nil) published a cursor")
	}
	if q.PopBatch(nil) != 0 {
		t.Error("PopBatch(nil) != 0")
	}
	q.Push(7)
	if q.PopBatch([]int{}) != 0 {
		t.Error("PopBatch(empty) consumed an element")
	}
	if v, ok := q.TryPop(); !ok || v != 7 {
		t.Fatalf("element disturbed by zero-length ops: %v %v", v, ok)
	}
}

func TestBatchInterleavedWithSingle(t *testing.T) {
	// Mixed per-element and batched operations share the same cursors and
	// must preserve global FIFO order.
	q, _ := NewSPSC[int](16)
	q.Push(0)
	q.Push(1)
	q.TryPushBatch([]int{2, 3, 4})
	q.Push(5)
	q.PushBatch([]int{6, 7})
	if v, ok := q.TryPop(); !ok || v != 0 {
		t.Fatalf("TryPop = %v,%v, want 0", v, ok)
	}
	dst := make([]int, 4)
	if k := q.PopBatch(dst); k != 4 || dst[0] != 1 || dst[3] != 4 {
		t.Fatalf("PopBatch = %d %v", k, dst)
	}
	for want := 5; want <= 7; want++ {
		v, ok := q.TryPop()
		if !ok || v != want {
			t.Fatalf("TryPop = %v,%v, want %d", v, ok, want)
		}
	}
	if !q.Empty() {
		t.Fatal("ring not empty")
	}
}

func TestBatchPushBatchSplitsUnderBackpressure(t *testing.T) {
	// PushBatch on a ring that frees up mid-call must report multiple
	// publications and still deliver everything in order.
	q, _ := NewSPSC[int](4)
	q.TryPushBatch([]int{0, 1, 2})
	done := make(chan int)
	go func() {
		batch := []int{3, 4, 5, 6, 7}
		done <- q.PushBatch(batch)
	}()
	var got []int
	for len(got) < 8 {
		if v, ok := q.TryPop(); ok {
			got = append(got, v)
		} else {
			runtime.Gosched()
		}
	}
	pubs := <-done
	if pubs < 2 {
		t.Errorf("publications = %d, want >= 2 (batch could not fit at once)", pubs)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("got[%d] = %d", i, v)
		}
	}
}

func TestBatchGCRelease(t *testing.T) {
	q, _ := NewSPSC[*int](4)
	q.TryPushBatch([]*int{new(int), new(int), new(int)})
	dst := make([]*int, 3)
	if k := q.PopBatch(dst); k != 3 {
		t.Fatalf("PopBatch = %d", k)
	}
	for i := 0; i < 3; i++ {
		if q.buf[i] != nil {
			t.Fatalf("popped slot %d still holds pointer", i)
		}
	}
}

// property: any interleaving of batch pushes and pops against a model list
// preserves FIFO and never loses or duplicates elements.
func TestQuickBatchFIFO(t *testing.T) {
	f := func(ops []uint8) bool {
		q, _ := NewSPSC[int](8)
		var model []int
		next := 0
		for _, op := range ops {
			size := int(op%4) + 1
			if op&0x80 != 0 {
				batch := make([]int, size)
				for i := range batch {
					batch[i] = next + i
				}
				n := q.TryPushBatch(batch)
				model = append(model, batch[:n]...)
				next += n
			} else {
				dst := make([]int, size)
				k := q.PopBatch(dst)
				if k > len(model) {
					return false
				}
				for i := 0; i < k; i++ {
					if dst[i] != model[i] {
						return false
					}
				}
				model = model[k:]
			}
			if q.Len() != len(model) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestConcurrentBatchStress(t *testing.T) {
	// Batched producer vs. batched consumer with mismatched batch sizes,
	// validating the release/acquire pairing under -race.
	q, _ := NewSPSC[int](64)
	const n = 50000
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		i := 0
		for i < n {
			size := 7 + i%9
			if i+size > n {
				size = n - i
			}
			batch := make([]int, size)
			for j := range batch {
				batch[j] = i + j
			}
			q.PushBatch(batch)
			i += size
		}
	}()
	dst := make([]int, 13)
	expect := 0
	for expect < n {
		k := q.PopBatch(dst)
		if k == 0 {
			runtime.Gosched()
			continue
		}
		for _, v := range dst[:k] {
			if v != expect {
				t.Fatalf("out of order: got %d, want %d", v, expect)
			}
			expect++
		}
	}
	wg.Wait()
	if !q.Empty() {
		t.Fatal("ring not empty at end")
	}
}

func TestConcurrentMixedStress(t *testing.T) {
	// Producer alternates single and batched pushes; consumer alternates
	// single and batched pops. Order must still be global FIFO.
	q, _ := NewSPSC[int](32)
	const n = 30000
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		i := 0
		for i < n {
			if i%3 == 0 {
				q.Push(i)
				i++
				continue
			}
			size := 4 + i%5
			if i+size > n {
				size = n - i
			}
			batch := make([]int, size)
			for j := range batch {
				batch[j] = i + j
			}
			q.PushBatch(batch)
			i += size
		}
	}()
	dst := make([]int, 6)
	expect := 0
	for expect < n {
		if expect%2 == 0 {
			if v, ok := q.TryPop(); ok {
				if v != expect {
					t.Fatalf("got %d, want %d", v, expect)
				}
				expect++
			} else {
				runtime.Gosched()
			}
			continue
		}
		k := q.PopBatch(dst)
		if k == 0 {
			runtime.Gosched()
			continue
		}
		for _, v := range dst[:k] {
			if v != expect {
				t.Fatalf("got %d, want %d", v, expect)
			}
			expect++
		}
	}
	wg.Wait()
}
