package queue

import (
	"runtime"
	"sync"
	"testing"
	"testing/quick"
)

func TestNewSPSC(t *testing.T) {
	if _, err := NewSPSC[int](0); err == nil {
		t.Error("accepted capacity 0")
	}
	q, err := NewSPSC[int](5)
	if err != nil {
		t.Fatal(err)
	}
	if q.Cap() != 8 {
		t.Errorf("Cap = %d, want 8 (rounded up)", q.Cap())
	}
	q1, _ := NewSPSC[int](1)
	if q1.Cap() != 2 {
		t.Errorf("min cap = %d, want 2", q1.Cap())
	}
}

func TestFIFOOrder(t *testing.T) {
	q, _ := NewSPSC[int](8)
	for i := 0; i < 8; i++ {
		if !q.TryPush(i) {
			t.Fatalf("push %d failed", i)
		}
	}
	if q.TryPush(99) {
		t.Fatal("push into full ring succeeded")
	}
	if q.Len() != 8 || q.Empty() {
		t.Fatalf("Len = %d", q.Len())
	}
	for i := 0; i < 8; i++ {
		v, ok := q.TryPop()
		if !ok || v != i {
			t.Fatalf("pop %d = %v,%v", i, v, ok)
		}
	}
	if _, ok := q.TryPop(); ok {
		t.Fatal("pop from empty ring succeeded")
	}
	if !q.Empty() {
		t.Fatal("ring not empty")
	}
}

func TestWraparound(t *testing.T) {
	q, _ := NewSPSC[int](4)
	for round := 0; round < 100; round++ {
		for i := 0; i < 3; i++ {
			q.Push(round*10 + i)
		}
		for i := 0; i < 3; i++ {
			v, ok := q.TryPop()
			if !ok || v != round*10+i {
				t.Fatalf("round %d: pop = %v,%v", round, v, ok)
			}
		}
	}
}

func TestConcurrentProducerConsumer(t *testing.T) {
	q, _ := NewSPSC[int](64)
	const n = 50000
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			q.Push(i)
		}
	}()
	var sum, count int64
	go func() {
		defer wg.Done()
		expect := 0
		for count < n {
			v, ok := q.TryPop()
			if !ok {
				// On a single-core host, busy-spinning starves the
				// producer; yield instead.
				runtime.Gosched()
				continue
			}
			if v != expect {
				t.Errorf("out of order: got %d, want %d", v, expect)
				return
			}
			expect++
			sum += int64(v)
			count++
		}
	}()
	wg.Wait()
	if count != n {
		t.Fatalf("consumed %d, want %d", count, n)
	}
	if want := int64(n) * (n - 1) / 2; sum != want {
		t.Fatalf("sum = %d, want %d", sum, want)
	}
}

func TestGCRelease(t *testing.T) {
	q, _ := NewSPSC[*int](2)
	x := new(int)
	q.Push(x)
	q.TryPop()
	// The slot must have been cleared so the pointer is collectable.
	if q.buf[0] != nil {
		t.Fatal("popped slot still holds pointer")
	}
}

// property: any interleaved sequence of pushes and pops preserves FIFO and
// never loses or duplicates elements.
func TestQuickFIFO(t *testing.T) {
	f := func(ops []bool) bool {
		q, _ := NewSPSC[int](4)
		var model []int
		next := 0
		for _, push := range ops {
			if push {
				if q.TryPush(next) {
					model = append(model, next)
				}
				next++
			} else {
				v, ok := q.TryPop()
				if ok {
					if len(model) == 0 || model[0] != v {
						return false
					}
					model = model[1:]
				} else if len(model) != 0 {
					return false
				}
			}
			if q.Len() != len(model) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLenApproximationQuiescent(t *testing.T) {
	q, _ := NewSPSC[int](16)
	for i := 0; i < 5; i++ {
		q.Push(i)
	}
	if q.Len() != 5 {
		t.Fatalf("Len = %d", q.Len())
	}
	q.TryPop()
	q.TryPop()
	if q.Len() != 3 || q.Empty() {
		t.Fatalf("Len after pops = %d", q.Len())
	}
}
