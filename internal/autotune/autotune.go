// Package autotune implements the paper's stated future work (§VII): "our
// future work includes ... auto-tuning for deciding the optimal number of
// worker/mover threads, as well as the partitioning ratio between CPU and
// MIC."
//
// Both tuners probe the real system: they execute short bounded runs of the
// actual application on the actual graph under candidate configurations and
// keep the one with the lowest simulated device time. Probes are bounded by
// iteration count, so tuning costs a small multiple of a few supersteps
// rather than full runs.
package autotune

import (
	"fmt"

	"hetgraph/internal/core"
	"hetgraph/internal/graph"
	"hetgraph/internal/machine"
	"hetgraph/internal/partition"
)

// Budget bounds the probing effort.
type Budget struct {
	// ProbeIters is the superstep bound per probe run (default 3).
	ProbeIters int
	// MaxProbes bounds the number of candidate configurations tried
	// (default 12).
	MaxProbes int
}

func (b Budget) withDefaults() Budget {
	if b.ProbeIters <= 0 {
		b.ProbeIters = 3
	}
	if b.MaxProbes <= 0 {
		b.MaxProbes = 12
	}
	return b
}

// AppFactory produces a fresh application instance per probe (probes mutate
// vertex state, so each needs its own).
type AppFactory func() core.AppF32

// SplitResult reports the worker/mover tuning outcome.
type SplitResult struct {
	Workers, Movers int
	// ProbeSimSeconds is the winning probe's simulated time.
	ProbeSimSeconds float64
	// Probes lists every tried split with its probe time.
	Probes []SplitProbe
}

// SplitProbe is one candidate's measurement.
type SplitProbe struct {
	Workers, Movers int
	SimSeconds      float64
}

// TuneSplit searches the worker/mover split for the pipelined scheme on one
// device. Candidates sweep the mover share geometrically around the
// device's default split; each candidate runs ProbeIters supersteps of the
// real application.
func TuneSplit(newApp AppFactory, g *graph.CSR, dev machine.DeviceSpec, budget Budget) (SplitResult, error) {
	budget = budget.withDefaults()
	total := dev.Threads()
	if total < 4 {
		return SplitResult{}, fmt.Errorf("autotune: device %s has too few threads (%d)", dev.Name, total)
	}
	// Candidate mover shares: 1/16 .. 1/2 of the device's threads.
	shares := []int{16, 12, 8, 6, 4, 3, 2}
	var res SplitResult
	for _, s := range shares {
		if len(res.Probes) >= budget.MaxProbes {
			break
		}
		movers := total / s
		if movers < 1 {
			movers = 1
		}
		workers := total - movers
		if workers < 1 {
			continue
		}
		run, err := core.RunF32(newApp(), g, core.Options{
			Dev:           dev,
			Scheme:        core.SchemePipelined,
			Vectorized:    true,
			Workers:       workers,
			Movers:        movers,
			MaxIterations: budget.ProbeIters,
		})
		if err != nil {
			return SplitResult{}, err
		}
		probe := SplitProbe{Workers: workers, Movers: movers, SimSeconds: run.SimSeconds}
		res.Probes = append(res.Probes, probe)
		if res.Workers == 0 || probe.SimSeconds < res.ProbeSimSeconds {
			res.Workers, res.Movers = workers, movers
			res.ProbeSimSeconds = probe.SimSeconds
		}
	}
	if res.Workers == 0 {
		return res, fmt.Errorf("autotune: no feasible split for %s", dev.Name)
	}
	return res, nil
}

// BatchResult reports the generation-batch-size tuning outcome.
type BatchResult struct {
	// BatchSize is the winning GenBatchSize (1 = per-element handoff).
	BatchSize int
	// ProbeSimSeconds is the winning probe's simulated time.
	ProbeSimSeconds float64
	// Probes lists every tried batch size with its probe time.
	Probes []BatchProbe
}

// BatchProbe is one candidate batch size's measurement.
type BatchProbe struct {
	BatchSize  int
	SimSeconds float64
}

// TuneGenBatch searches the worker→mover handoff batch size for the
// pipelined scheme on one device, sweeping powers of two around the default
// (1 probes the paper's per-element handoff as the baseline). Each candidate
// runs ProbeIters supersteps of the real application; the winner is the
// lowest simulated device time, which trades the amortized cursor handshake
// against the latency of messages parked in worker-local buffers.
func TuneGenBatch(newApp AppFactory, g *graph.CSR, dev machine.DeviceSpec, budget Budget) (BatchResult, error) {
	budget = budget.withDefaults()
	candidates := []int{1, 8, 16, 32, 64, 128, 256}
	var res BatchResult
	for _, batch := range candidates {
		if len(res.Probes) >= budget.MaxProbes {
			break
		}
		run, err := core.RunF32(newApp(), g, core.Options{
			Dev:           dev,
			Scheme:        core.SchemePipelined,
			Vectorized:    true,
			GenBatchSize:  batch,
			MaxIterations: budget.ProbeIters,
		})
		if err != nil {
			return BatchResult{}, err
		}
		probe := BatchProbe{BatchSize: batch, SimSeconds: run.SimSeconds}
		res.Probes = append(res.Probes, probe)
		if res.BatchSize == 0 || probe.SimSeconds < res.ProbeSimSeconds {
			res.BatchSize = batch
			res.ProbeSimSeconds = probe.SimSeconds
		}
	}
	if res.BatchSize == 0 {
		return res, fmt.Errorf("autotune: no batch size probed")
	}
	return res, nil
}

// RatioResult reports the partitioning-ratio tuning outcome.
type RatioResult struct {
	Ratio partition.Ratio
	// ProbeSimSeconds is the winning probe's simulated time (exec+comm).
	ProbeSimSeconds float64
	// Probes lists every tried ratio.
	Probes []RatioProbe
}

// RatioProbe is one candidate ratio's measurement.
type RatioProbe struct {
	Ratio      partition.Ratio
	SimSeconds float64
}

// TuneRatio searches the CPU:MIC workload ratio for heterogeneous
// execution. It first estimates the ratio from single-device probe speeds
// (the §IV-E balance criterion), then probes that ratio's neighborhood with
// real heterogeneous runs under the given partitioning method.
func TuneRatio(newApp AppFactory, g *graph.CSR, method partition.Method,
	optCPU, optMIC core.Options, budget Budget) (RatioResult, error) {
	budget = budget.withDefaults()

	probeOpt := func(o core.Options) core.Options {
		o.MaxIterations = budget.ProbeIters
		return o
	}
	cpuRun, err := core.RunF32(newApp(), g, probeOpt(optCPU))
	if err != nil {
		return RatioResult{}, err
	}
	micRun, err := core.RunF32(newApp(), g, probeOpt(optMIC))
	if err != nil {
		return RatioResult{}, err
	}
	center := ratioFromSpeeds(cpuRun.SimSeconds, micRun.SimSeconds)

	tried := map[[2]int]bool{}
	var res RatioResult
	for _, delta := range []int{0, -1, 1, -2, 2} {
		if len(res.Probes) >= budget.MaxProbes {
			break
		}
		a := center.A + delta
		if a < 1 || a > 7 {
			continue
		}
		r := partition.Ratio{A: a, B: 8 - a}
		if tried[[2]int{r.A, r.B}] {
			continue
		}
		tried[[2]int{r.A, r.B}] = true
		assign, err := partition.Make(method, g, r)
		if err != nil {
			return RatioResult{}, err
		}
		run, err := core.RunF32Hetero(newApp(), g, assign, probeOpt(optCPU), probeOpt(optMIC))
		if err != nil {
			return RatioResult{}, err
		}
		probe := RatioProbe{Ratio: r, SimSeconds: run.SimSeconds}
		res.Probes = append(res.Probes, probe)
		if res.Ratio.A == 0 || probe.SimSeconds < res.ProbeSimSeconds {
			res.Ratio = r
			res.ProbeSimSeconds = probe.SimSeconds
		}
	}
	if res.Ratio.A == 0 {
		return res, fmt.Errorf("autotune: no feasible ratio probed")
	}
	return res, nil
}

// ratioFromSpeeds mirrors the harness quantization: the faster device gets
// proportionally more work, in eighths, clamped to [1,7].
func ratioFromSpeeds(tCPU, tMIC float64) partition.Ratio {
	if tCPU <= 0 || tMIC <= 0 {
		return partition.Ratio{A: 4, B: 4}
	}
	wCPU, wMIC := 1/tCPU, 1/tMIC
	a := int(8*wCPU/(wCPU+wMIC) + 0.5)
	if a < 1 {
		a = 1
	}
	if a > 7 {
		a = 7
	}
	return partition.Ratio{A: a, B: 8 - a}
}
