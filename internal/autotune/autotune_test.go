package autotune

import (
	"testing"

	"hetgraph/internal/apps"
	"hetgraph/internal/core"
	"hetgraph/internal/gen"
	"hetgraph/internal/graph"
	"hetgraph/internal/machine"
	"hetgraph/internal/partition"
)

func tuneGraph(t *testing.T) *graph.CSR {
	t.Helper()
	g, err := gen.PowerLaw(gen.PowerLawConfig{N: 4000, MeanDeg: 10, Alpha: 2.2, FrontBias: 0.7, Locality: 0.6, LocalWindow: 0.02, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestBudgetDefaults(t *testing.T) {
	b := Budget{}.withDefaults()
	if b.ProbeIters != 3 || b.MaxProbes != 12 {
		t.Fatalf("defaults = %+v", b)
	}
	b = Budget{ProbeIters: 5, MaxProbes: 2}.withDefaults()
	if b.ProbeIters != 5 || b.MaxProbes != 2 {
		t.Fatalf("explicit budget overridden: %+v", b)
	}
}

func TestTuneSplitFindsValidSplit(t *testing.T) {
	g := tuneGraph(t)
	res, err := TuneSplit(func() core.AppF32 { return apps.NewPageRank() }, g, machine.MIC(), Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Workers+res.Movers != machine.MIC().Threads() {
		t.Fatalf("split %d+%d does not cover device threads", res.Workers, res.Movers)
	}
	if res.Workers < 1 || res.Movers < 1 {
		t.Fatalf("degenerate split %d+%d", res.Workers, res.Movers)
	}
	if len(res.Probes) < 3 {
		t.Fatalf("only %d probes", len(res.Probes))
	}
	// The winner must be the minimum over the probes.
	for _, p := range res.Probes {
		if p.SimSeconds < res.ProbeSimSeconds {
			t.Fatalf("probe %d+%d (%v) beats reported winner (%v)",
				p.Workers, p.Movers, p.SimSeconds, res.ProbeSimSeconds)
		}
	}
}

func TestTuneSplitBudgetRespected(t *testing.T) {
	g := tuneGraph(t)
	res, err := TuneSplit(func() core.AppF32 { return apps.NewPageRank() }, g, machine.MIC(), Budget{MaxProbes: 2, ProbeIters: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Probes) > 2 {
		t.Fatalf("%d probes despite MaxProbes=2", len(res.Probes))
	}
}

func TestTuneSplitRejectsTinyDevice(t *testing.T) {
	tiny := machine.CPU()
	tiny.Cores = 2
	tiny.ThreadsPerCore = 1
	if _, err := TuneSplit(func() core.AppF32 { return apps.NewPageRank() }, tuneGraph(t), tiny, Budget{}); err == nil {
		t.Fatal("accepted 2-thread device")
	}
}

func TestTuneRatioFindsValidRatio(t *testing.T) {
	g := tuneGraph(t)
	optCPU := core.Options{Dev: machine.CPU(), Scheme: core.SchemeLocking, Vectorized: true}
	optMIC := core.Options{Dev: machine.MIC(), Scheme: core.SchemePipelined, Vectorized: true}
	res, err := TuneRatio(func() core.AppF32 { return apps.NewPageRank() }, g,
		partition.MethodRoundRobin, optCPU, optMIC, Budget{ProbeIters: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Ratio.Validate(); err != nil {
		t.Fatal(err)
	}
	if res.Ratio.A+res.Ratio.B != 8 {
		t.Fatalf("ratio %d:%d not in eighths", res.Ratio.A, res.Ratio.B)
	}
	if len(res.Probes) < 2 {
		t.Fatalf("only %d ratio probes", len(res.Probes))
	}
	for _, p := range res.Probes {
		if p.SimSeconds < res.ProbeSimSeconds {
			t.Fatalf("probe %v beats winner", p)
		}
	}
}

func TestRatioFromSpeeds(t *testing.T) {
	if r := ratioFromSpeeds(1, 1); r.A != 4 {
		t.Errorf("equal -> %v", r)
	}
	if r := ratioFromSpeeds(0, 1); r.A != 4 {
		t.Errorf("degenerate -> %v", r)
	}
	if r := ratioFromSpeeds(100, 1); r.A != 1 {
		t.Errorf("slow CPU -> %v", r)
	}
	if r := ratioFromSpeeds(1, 100); r.A != 7 {
		t.Errorf("slow MIC -> %v", r)
	}
}

// The tuned split should not be catastrophically worse than the paper's
// default split on a contention-heavy workload (it usually matches or beats
// it, since both favor a large worker share).
func TestTunedSplitQuality(t *testing.T) {
	dag, err := gen.RandomDAG(gen.DefaultDAG(800, 120000))
	if err != nil {
		t.Fatal(err)
	}
	newApp := func() core.AppF32 { return apps.NewTopoSort() }
	res, err := TuneSplit(newApp, dag, machine.MIC(), Budget{})
	if err != nil {
		t.Fatal(err)
	}
	defW, defM := machine.DefaultPipeSplit(machine.MIC())
	defRun, err := core.RunF32(newApp(), dag, core.Options{
		Dev: machine.MIC(), Scheme: core.SchemePipelined, Vectorized: true,
		Workers: defW, Movers: defM,
	})
	if err != nil {
		t.Fatal(err)
	}
	tunedRun, err := core.RunF32(newApp(), dag, core.Options{
		Dev: machine.MIC(), Scheme: core.SchemePipelined, Vectorized: true,
		Workers: res.Workers, Movers: res.Movers,
	})
	if err != nil {
		t.Fatal(err)
	}
	if tunedRun.SimSeconds > 1.5*defRun.SimSeconds {
		t.Errorf("tuned split %d+%d (%v) much worse than default %d+%d (%v)",
			res.Workers, res.Movers, tunedRun.SimSeconds, defW, defM, defRun.SimSeconds)
	}
}

func TestTuneGenBatchFindsValidBatch(t *testing.T) {
	g := tuneGraph(t)
	res, err := TuneGenBatch(func() core.AppF32 { return apps.NewPageRank() }, g, machine.MIC(), Budget{ProbeIters: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.BatchSize < 1 {
		t.Fatalf("degenerate batch size %d", res.BatchSize)
	}
	if len(res.Probes) < 3 {
		t.Fatalf("only %d probes", len(res.Probes))
	}
	sawBaseline := false
	for _, p := range res.Probes {
		if p.BatchSize == 1 {
			sawBaseline = true
		}
		if p.SimSeconds < res.ProbeSimSeconds {
			t.Fatalf("probe b=%d (%v) beats reported winner (%v)", p.BatchSize, p.SimSeconds, res.ProbeSimSeconds)
		}
	}
	if !sawBaseline {
		t.Error("per-element baseline (batch 1) was not probed")
	}
	// On the MIC's power-law workload the amortized handoff must win over
	// the per-element baseline.
	if res.BatchSize == 1 {
		t.Error("tuner picked the per-element handoff on the MIC power-law workload")
	}
}

func TestTuneGenBatchBudgetRespected(t *testing.T) {
	g := tuneGraph(t)
	res, err := TuneGenBatch(func() core.AppF32 { return apps.NewPageRank() }, g, machine.MIC(), Budget{MaxProbes: 2, ProbeIters: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Probes) != 2 {
		t.Fatalf("probes = %d, want 2 (budget)", len(res.Probes))
	}
}
