package hetgraph_test

import (
	"math"
	"testing"

	"hetgraph"
)

// The facade tests exercise every public entry point end to end, the way a
// downstream user would.

func TestFacadeGraphConstruction(t *testing.T) {
	b := hetgraph.NewGraphBuilder(4, true)
	b.AddEdge(0, 1, 2)
	b.AddEdge(1, 2, 3)
	b.AddEdge(2, 3, 4)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 4 || g.NumEdges() != 3 {
		t.Fatalf("graph shape wrong: %d/%d", g.NumVertices(), g.NumEdges())
	}
	s := hetgraph.Stats(g)
	if s.NumEdges != 3 {
		t.Error("Stats wrong")
	}
	if hetgraph.PaperExampleGraph().NumEdges() != 28 {
		t.Error("paper example wrong")
	}
}

func TestFacadeGraphIO(t *testing.T) {
	dir := t.TempDir()
	g, err := hetgraph.GenerateUniform(50, 400, 9)
	if err != nil {
		t.Fatal(err)
	}
	if err := hetgraph.SaveGraph(dir+"/g.adj", g); err != nil {
		t.Fatal(err)
	}
	g2, err := hetgraph.LoadGraph(dir + "/g.adj")
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != g.NumEdges() {
		t.Error("round trip lost edges")
	}
}

func TestFacadeGenerators(t *testing.T) {
	pl, err := hetgraph.GeneratePowerLaw(hetgraph.DefaultPowerLaw(2000))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := hetgraph.AddRandomWeights(pl, 0, 5, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := hetgraph.GenerateCommunity(hetgraph.DefaultCommunity(1000)); err != nil {
		t.Fatal(err)
	}
	dag, err := hetgraph.GenerateDAG(hetgraph.DefaultDAG(500, 20000))
	if err != nil {
		t.Fatal(err)
	}
	if !dag.IsDAG() {
		t.Error("DAG generator produced a cycle")
	}
}

func TestFacadeDevices(t *testing.T) {
	if hetgraph.CPU().Threads() != 16 || hetgraph.MIC().Threads() != 240 {
		t.Error("device geometries wrong")
	}
}

func TestFacadeQuickstartFlow(t *testing.T) {
	g, err := hetgraph.GeneratePowerLaw(hetgraph.DefaultPowerLaw(3000))
	if err != nil {
		t.Fatal(err)
	}
	g, err = hetgraph.AddRandomWeights(g, 0, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	app := hetgraph.NewSSSP(0)
	res, err := hetgraph.Run(app, g, hetgraph.Options{
		Dev: hetgraph.MIC(), Scheme: hetgraph.SchemePipelined, Vectorized: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.SimSeconds <= 0 {
		t.Fatalf("run failed: %+v", res)
	}
	if app.Dist[0] != 0 {
		t.Error("source distance not 0")
	}
}

func TestFacadeHeteroFlow(t *testing.T) {
	g, err := hetgraph.GeneratePowerLaw(hetgraph.DefaultPowerLaw(3000))
	if err != nil {
		t.Fatal(err)
	}
	assign, err := hetgraph.Partition(hetgraph.PartitionHybrid, g, hetgraph.Ratio{A: 3, B: 5})
	if err != nil {
		t.Fatal(err)
	}
	if hetgraph.CrossEdges(g, assign) <= 0 {
		t.Error("no cross edges on a connected graph")
	}
	dir := t.TempDir()
	if err := hetgraph.SavePartition(dir+"/p.part", assign); err != nil {
		t.Fatal(err)
	}
	loaded, err := hetgraph.LoadPartition(dir + "/p.part")
	if err != nil {
		t.Fatal(err)
	}
	app := hetgraph.NewPageRank()
	res, err := hetgraph.RunHetero(app, g, loaded,
		hetgraph.Options{Dev: hetgraph.CPU(), Scheme: hetgraph.SchemeLocking, Vectorized: true, MaxIterations: 3},
		hetgraph.Options{Dev: hetgraph.MIC(), Scheme: hetgraph.SchemePipelined, Vectorized: true, MaxIterations: 3},
	)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 3 || res.CommSeconds <= 0 {
		t.Fatalf("hetero run wrong: %+v", res)
	}
	var sum float64
	for _, r := range app.Ranks {
		sum += float64(r)
	}
	if math.IsNaN(sum) || sum <= 0 {
		t.Error("ranks corrupted")
	}
}

func TestFacadeOtherApps(t *testing.T) {
	g, err := hetgraph.GenerateUniform(1000, 8000, 4)
	if err != nil {
		t.Fatal(err)
	}
	bfs := hetgraph.NewBFS(0)
	if _, err := hetgraph.Run(bfs, g, hetgraph.Options{Dev: hetgraph.CPU()}); err != nil {
		t.Fatal(err)
	}
	if bfs.Levels[0] != 0 {
		t.Error("BFS source level wrong")
	}
	dag, err := hetgraph.GenerateDAG(hetgraph.DefaultDAG(300, 8000))
	if err != nil {
		t.Fatal(err)
	}
	topo := hetgraph.NewTopoSort()
	if _, err := hetgraph.Run(topo, dag, hetgraph.Options{Dev: hetgraph.MIC(), Scheme: hetgraph.SchemePipelined, Vectorized: true}); err != nil {
		t.Fatal(err)
	}
	if !topo.Ordered() {
		t.Error("TopoSort incomplete")
	}
}

func TestFacadeSemiClustering(t *testing.T) {
	g, err := hetgraph.GenerateCommunity(hetgraph.DefaultCommunity(600))
	if err != nil {
		t.Fatal(err)
	}
	sc := hetgraph.NewSemiClustering(3, 4, 0.2)
	res, err := hetgraph.RunSemiClustering(sc, g, hetgraph.Options{
		Dev: hetgraph.MIC(), Scheme: hetgraph.SchemePipelined, MaxIterations: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations == 0 {
		t.Fatal("no iterations")
	}
	for v, cl := range sc.Clusters {
		if len(cl) == 0 {
			t.Fatalf("vertex %d clusterless", v)
		}
	}
	assign, err := hetgraph.Partition(hetgraph.PartitionRoundRobin, g, hetgraph.Ratio{A: 2, B: 1})
	if err != nil {
		t.Fatal(err)
	}
	sc2 := hetgraph.NewSemiClustering(3, 4, 0.2)
	hres, err := hetgraph.RunSemiClusteringHetero(sc2, g, assign,
		hetgraph.Options{Dev: hetgraph.CPU(), Scheme: hetgraph.SchemeLocking, MaxIterations: 4},
		hetgraph.Options{Dev: hetgraph.MIC(), Scheme: hetgraph.SchemePipelined, MaxIterations: 4},
	)
	if err != nil {
		t.Fatal(err)
	}
	if hres.Iterations == 0 {
		t.Fatal("hetero SC did not run")
	}
}

func TestFacadeOMPBaseline(t *testing.T) {
	g, err := hetgraph.GenerateUniform(800, 6000, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := hetgraph.RunOMP(hetgraph.NewPageRank(), g, hetgraph.MIC(), 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 3 || res.SimSeconds <= 0 {
		t.Fatalf("OMP run wrong: %+v", res)
	}
}

func TestFacadePartitionHybridBlocks(t *testing.T) {
	g, err := hetgraph.GeneratePowerLaw(hetgraph.DefaultPowerLaw(2000))
	if err != nil {
		t.Fatal(err)
	}
	assign, err := hetgraph.PartitionHybridBlocks(g, hetgraph.Ratio{A: 1, B: 1}, 8)
	if err != nil {
		t.Fatal(err)
	}
	var on1 int
	for _, a := range assign {
		if a == 1 {
			on1++
		}
	}
	if on1 == 0 || on1 == len(assign) {
		t.Error("degenerate hybrid assignment")
	}
}

func TestFacadeBinaryGraphIO(t *testing.T) {
	dir := t.TempDir()
	g, err := hetgraph.GenerateUniform(100, 900, 11)
	if err != nil {
		t.Fatal(err)
	}
	if err := hetgraph.SaveGraphBinary(dir+"/g.bin", g); err != nil {
		t.Fatal(err)
	}
	g2, err := hetgraph.LoadGraph(dir + "/g.bin") // auto-detects binary
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != g.NumEdges() {
		t.Fatal("binary round trip lost edges")
	}
}

func TestFacadeConnectedComponents(t *testing.T) {
	g, err := hetgraph.GenerateCommunity(hetgraph.DefaultCommunity(500))
	if err != nil {
		t.Fatal(err)
	}
	cc := hetgraph.NewConnectedComponents()
	res, err := hetgraph.Run(cc, g, hetgraph.Options{Dev: hetgraph.MIC(), Scheme: hetgraph.SchemePipelined, Vectorized: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || cc.NumComponents() < 1 {
		t.Fatalf("CC failed: converged=%v comps=%d", res.Converged, cc.NumComponents())
	}
}

func TestFacadeAutotune(t *testing.T) {
	g, err := hetgraph.GeneratePowerLaw(hetgraph.DefaultPowerLaw(2000))
	if err != nil {
		t.Fatal(err)
	}
	newApp := func() hetgraph.AppF32 { return hetgraph.NewPageRank() }
	split, err := hetgraph.TuneWorkerMoverSplit(newApp, g, hetgraph.MIC(), hetgraph.TuneBudget{MaxProbes: 3, ProbeIters: 1})
	if err != nil {
		t.Fatal(err)
	}
	if split.Workers+split.Movers != 240 {
		t.Fatalf("split %d+%d", split.Workers, split.Movers)
	}
	ratio, err := hetgraph.TunePartitionRatio(newApp, g, hetgraph.PartitionRoundRobin,
		hetgraph.Options{Dev: hetgraph.CPU(), Scheme: hetgraph.SchemeLocking, Vectorized: true},
		hetgraph.Options{Dev: hetgraph.MIC(), Scheme: hetgraph.SchemePipelined, Vectorized: true},
		hetgraph.TuneBudget{MaxProbes: 3, ProbeIters: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := ratio.Ratio.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeVerifyAgainstSequential(t *testing.T) {
	g, err := hetgraph.GeneratePowerLaw(hetgraph.DefaultPowerLaw(1500))
	if err != nil {
		t.Fatal(err)
	}
	wg, err := hetgraph.AddRandomWeights(g, 0, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	app := hetgraph.NewSSSP(0)
	if _, err := hetgraph.Run(app, wg, hetgraph.Options{Dev: hetgraph.CPU()}); err != nil {
		t.Fatal(err)
	}
	ok, detail := hetgraph.VerifyAgainstSequential("sssp", app, wg, 0, 0)
	if !ok {
		t.Fatalf("verify failed: %s", detail)
	}
	// Corrupt the result: verification must catch it.
	app.Dist[7] = -1
	if ok, _ := hetgraph.VerifyAgainstSequential("sssp", app, wg, 0, 0); ok {
		t.Fatal("verification accepted corrupted distances")
	}
	// Unknown app type.
	if ok, _ := hetgraph.VerifyAgainstSequential("mystery", nil, wg, 0, 0); ok {
		t.Fatal("verification accepted unknown app")
	}
}

func TestFacadeTrace(t *testing.T) {
	g, err := hetgraph.GenerateUniform(500, 4000, 6)
	if err != nil {
		t.Fatal(err)
	}
	rec := hetgraph.NewTraceRecorder()
	app := hetgraph.NewPageRank()
	if _, err := hetgraph.Run(app, g, hetgraph.Options{Dev: hetgraph.MIC(), MaxIterations: 2, Trace: rec}); err != nil {
		t.Fatal(err)
	}
	if rec.Len() == 0 {
		t.Fatal("no trace samples")
	}
	if hetgraph.FormatTraceSummary(rec.Summarize()) == "" {
		t.Fatal("empty summary")
	}
}

func TestFacadeVerifyAllApps(t *testing.T) {
	// Exercise every verification branch through the facade.
	g, err := hetgraph.GenerateUniform(400, 3000, 14)
	if err != nil {
		t.Fatal(err)
	}

	bfs := hetgraph.NewBFS(0)
	if _, err := hetgraph.Run(bfs, g, hetgraph.Options{Dev: hetgraph.CPU()}); err != nil {
		t.Fatal(err)
	}
	if ok, d := hetgraph.VerifyAgainstSequential("bfs", bfs, g, 0, 0); !ok {
		t.Fatalf("bfs verify: %s", d)
	}
	bfs.Levels[3] = 99
	if ok, _ := hetgraph.VerifyAgainstSequential("bfs", bfs, g, 0, 0); ok {
		t.Fatal("bfs verify accepted corruption")
	}

	pr := hetgraph.NewPageRank()
	if _, err := hetgraph.Run(pr, g, hetgraph.Options{Dev: hetgraph.CPU(), MaxIterations: 4}); err != nil {
		t.Fatal(err)
	}
	if ok, d := hetgraph.VerifyAgainstSequential("pagerank", pr, g, 0, 4); !ok {
		t.Fatalf("pagerank verify: %s", d)
	}
	if ok, _ := hetgraph.VerifyAgainstSequential("pagerank", pr, g, 0, 0); ok {
		t.Fatal("pagerank verify without iteration count accepted")
	}
	pr.Ranks[0] = 1e9
	if ok, _ := hetgraph.VerifyAgainstSequential("pagerank", pr, g, 0, 4); ok {
		t.Fatal("pagerank verify accepted corruption")
	}

	dag, err := hetgraph.GenerateDAG(hetgraph.DefaultDAG(200, 4000))
	if err != nil {
		t.Fatal(err)
	}
	topo := hetgraph.NewTopoSort()
	if _, err := hetgraph.Run(topo, dag, hetgraph.Options{Dev: hetgraph.CPU()}); err != nil {
		t.Fatal(err)
	}
	if ok, d := hetgraph.VerifyAgainstSequential("toposort", topo, dag, 0, 0); !ok {
		t.Fatalf("toposort verify: %s", d)
	}
	topo.Order[0], topo.Order[199] = topo.Order[199], topo.Order[0]
	if ok, _ := hetgraph.VerifyAgainstSequential("toposort", topo, dag, 0, 0); ok {
		t.Fatal("toposort verify accepted corruption")
	}

	cg, err := hetgraph.GenerateCommunity(hetgraph.DefaultCommunity(400))
	if err != nil {
		t.Fatal(err)
	}
	cc := hetgraph.NewConnectedComponents()
	if _, err := hetgraph.Run(cc, cg, hetgraph.Options{Dev: hetgraph.CPU()}); err != nil {
		t.Fatal(err)
	}
	if ok, d := hetgraph.VerifyAgainstSequential("cc", cc, cg, 0, 0); !ok {
		t.Fatalf("cc verify: %s", d)
	}
	cc.Labels[5] = 399
	if ok, _ := hetgraph.VerifyAgainstSequential("cc", cc, cg, 0, 0); ok {
		t.Fatal("cc verify accepted corruption")
	}
}

func TestFacadeRMATAndStats(t *testing.T) {
	g, err := hetgraph.GenerateRMAT(hetgraph.DefaultRMAT(10))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 1024 {
		t.Fatalf("RMAT vertices = %d", g.NumVertices())
	}
	s := hetgraph.Stats(g)
	if s.GiniOut < 0.4 {
		t.Errorf("RMAT not skewed: gini %v", s.GiniOut)
	}
}

func TestFacadeLabelPropagation(t *testing.T) {
	g, err := hetgraph.GenerateCommunity(hetgraph.DefaultCommunity(600))
	if err != nil {
		t.Fatal(err)
	}
	app := hetgraph.NewLabelPropagation()
	res, err := hetgraph.RunLabelPropagation(app, g, hetgraph.Options{
		Dev: hetgraph.MIC(), Scheme: hetgraph.SchemePipelined, MaxIterations: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations == 0 {
		t.Fatal("no iterations")
	}
	if app.NumCommunities() >= g.NumVertices() {
		t.Fatal("LPA found no structure")
	}
	sizes := app.CommunitySizes()
	if len(sizes) != app.NumCommunities() || sizes[0] < sizes[len(sizes)-1] {
		t.Fatal("community sizes inconsistent")
	}
	assign, err := hetgraph.Partition(hetgraph.PartitionRoundRobin, g, hetgraph.Ratio{A: 1, B: 1})
	if err != nil {
		t.Fatal(err)
	}
	app2 := hetgraph.NewLabelPropagation()
	if _, err := hetgraph.RunLabelPropagationHetero(app2, g, assign,
		hetgraph.Options{Dev: hetgraph.CPU(), Scheme: hetgraph.SchemeLocking, MaxIterations: 8},
		hetgraph.Options{Dev: hetgraph.MIC(), Scheme: hetgraph.SchemePipelined, MaxIterations: 8},
	); err != nil {
		t.Fatal(err)
	}
	for v := range app.Labels {
		if app2.Labels[v] != app.Labels[v] {
			t.Fatalf("hetero LPA diverges at %d", v)
		}
	}
}
