// Package hetgraph is a vertex-centric graph processing framework for a
// heterogeneous CPU + Intel Xeon Phi (MIC) node, reproducing Chen, Huo,
// Ren, Jain & Agrawal, "Efficient and Simplified Parallel Graph Processing
// over CPU and MIC" (IPDPS 2015).
//
// Applications are written as three user functions — message generation,
// message processing, and vertex updating — over a BSP iteration (§III of
// the paper). The runtime provides:
//
//   - a Condensed Static Buffer that stores messages SIMD-aligned per
//     degree-sorted vertex group, enabling vectorized message reduction at
//     low memory cost;
//   - locking and pipelined (worker/mover) message-generation schemes;
//   - dynamic intra-device load balancing;
//   - hybrid Metis-style CPU/MIC graph partitioning with MPI-symmetric-mode
//     style message exchange.
//
// Because this reproduction targets commodity hardware, the devices are
// simulated: all data structures and concurrency run for real (goroutines,
// lock-free queues, real buffers), while per-device time is computed by a
// calibrated cost model from the counted events of that real execution.
// See DESIGN.md and the internal/machine package documentation.
//
// # Device groups
//
// The paper's CPU+MIC pair generalizes to an N-rank device group: a
// heterogeneous run executes over any ordered set of device specs, one
// rank per spec, exchanging messages all-to-all each superstep. Pass one
// Options per rank to RunF32Hetero (or the app-specific hetero runners),
// or a single Options whose Devices field lists the group. The classic
// two-rank CPU+MIC topology is simply the 2-element group and keeps its
// original behavior exactly. Partition an input graph across a group with
// PartitionN using DeviceWeights for spec-proportional workload ratios.
// Fault tolerance — blame via majority quorum, degraded continuation on
// the surviving subset, and epoch-fenced rejoin back to full membership —
// operates over any group size; see docs/architecture.md for the model
// and docs/robustness.md for the fault lifecycle.
//
// Quick start:
//
//	g, _ := hetgraph.GeneratePowerLaw(hetgraph.DefaultPowerLaw(10000))
//	wg, _ := hetgraph.AddRandomWeights(g, 0, 10, 1)
//	app := hetgraph.NewSSSP(0)
//	res, _ := hetgraph.Run(app, wg, hetgraph.Options{
//	    Dev: hetgraph.MIC(), Scheme: hetgraph.SchemePipelined, Vectorized: true,
//	})
//	fmt.Println(res.SimSeconds, app.Dist[42])
package hetgraph

import (
	"fmt"
	"math"

	"hetgraph/internal/apps"
	"hetgraph/internal/autotune"
	"hetgraph/internal/checkpoint"
	"hetgraph/internal/comm"
	"hetgraph/internal/core"
	"hetgraph/internal/csb"
	"hetgraph/internal/fault"
	"hetgraph/internal/gen"
	"hetgraph/internal/graph"
	"hetgraph/internal/machine"
	"hetgraph/internal/metis"
	"hetgraph/internal/metrics"
	"hetgraph/internal/ompbase"
	"hetgraph/internal/partition"
	"hetgraph/internal/seqref"
	"hetgraph/internal/trace"
	"hetgraph/internal/vec"
)

// Graph and construction.
type (
	// Graph is a directed graph in CSR form.
	Graph = graph.CSR
	// VertexID indexes a vertex.
	VertexID = graph.VertexID
	// GraphBuilder accumulates edges into a Graph.
	GraphBuilder = graph.Builder
	// GraphStats summarizes degree structure.
	GraphStats = graph.Stats
)

// NewGraphBuilder creates a builder for n vertices.
func NewGraphBuilder(n int, weighted bool) *GraphBuilder { return graph.NewBuilder(n, weighted) }

// LoadGraph reads a graph file in either the adjacency-list text format or
// the binary CSR format (auto-detected).
func LoadGraph(path string) (*Graph, error) { return graph.LoadAuto(path) }

// SaveGraph writes a graph in the adjacency-list text format.
func SaveGraph(path string, g *Graph) error { return graph.SaveFile(path, g) }

// SaveGraphBinary writes a graph in the compact binary CSR format, which
// loads much faster for large graphs.
func SaveGraphBinary(path string, g *Graph) error { return graph.SaveBinaryFile(path, g) }

// Stats computes degree statistics.
func Stats(g *Graph) GraphStats { return graph.ComputeStats(g) }

// PaperExampleGraph returns the 16-vertex example of the paper's Figure 1.
func PaperExampleGraph() *Graph { return graph.PaperExample() }

// Synthetic workload generators.
type (
	// PowerLawConfig parameterizes the Pokec-like generator.
	PowerLawConfig = gen.PowerLawConfig
	// CommunityConfig parameterizes the DBLP-like generator.
	CommunityConfig = gen.CommunityConfig
	// DAGConfig parameterizes the dense random DAG generator.
	DAGConfig = gen.DAGConfig
)

// DefaultPowerLaw returns the Pokec-substitute configuration for n vertices.
func DefaultPowerLaw(n int) PowerLawConfig { return gen.DefaultPowerLaw(n) }

// DefaultCommunity returns the DBLP-substitute configuration for n vertices.
func DefaultCommunity(n int) CommunityConfig { return gen.DefaultCommunity(n) }

// DefaultDAG returns the TopoSort DAG configuration.
func DefaultDAG(n, m int) DAGConfig { return gen.DefaultDAG(n, m) }

// GeneratePowerLaw builds a directed power-law graph.
func GeneratePowerLaw(cfg PowerLawConfig) (*Graph, error) { return gen.PowerLaw(cfg) }

// GenerateCommunity builds an undirected community graph (directed form).
func GenerateCommunity(cfg CommunityConfig) (*Graph, error) { return gen.Community(cfg) }

// GenerateDAG builds a random DAG.
func GenerateDAG(cfg DAGConfig) (*Graph, error) { return gen.RandomDAG(cfg) }

// GenerateUniform builds an Erdős–Rényi-style random directed multigraph.
func GenerateUniform(n, m int, seed int64) (*Graph, error) { return gen.Uniform(n, m, seed) }

// RMATConfig parameterizes the Graph500-style R-MAT generator.
type RMATConfig = gen.RMATConfig

// DefaultRMAT returns the Graph500 parameterization at the given scale
// (2^scale vertices, 16 edges per vertex).
func DefaultRMAT(scale int) RMATConfig { return gen.DefaultRMAT(scale) }

// GenerateRMAT builds an R-MAT directed multigraph.
func GenerateRMAT(cfg RMATConfig) (*Graph, error) { return gen.RMAT(cfg) }

// AddRandomWeights attaches uniform random weights in (lo, hi] to g.
func AddRandomWeights(g *Graph, lo, hi float32, seed int64) (*Graph, error) {
	return gen.WithWeights(g, lo, hi, seed)
}

// Devices and execution.
type (
	// DeviceSpec models one compute device.
	DeviceSpec = machine.DeviceSpec
	// AppProfile describes an application's per-event costs.
	AppProfile = machine.AppProfile
	// Options configures an engine run.
	Options = core.Options
	// Result reports a single-device run.
	Result = core.Result
	// HeteroResult reports a device-group (hetero) run; Dev holds one
	// Result per rank.
	HeteroResult = core.HeteroResult
	// Scheme selects the message-generation scheme.
	Scheme = core.Scheme
	// InsertMode selects the CSB column mapping policy.
	InsertMode = csb.InsertMode
	// AppF32 is a float32-message vertex program.
	AppF32 = core.AppF32
	// Direction selects the traversal direction (push, pull, or auto).
	Direction = core.Direction
	// PullerF32 is optionally implemented by AppF32 programs that support
	// pull/bottom-up traversal.
	PullerF32 = core.PullerF32
	// VecArrayF32 is an aligned SIMD vector array (used by ReduceVec).
	VecArrayF32 = vec.ArrayF32
	// OMPResult reports an OpenMP-baseline run.
	OMPResult = ompbase.Result
)

// Generation schemes (§IV-C).
const (
	SchemeLocking   = core.SchemeLocking
	SchemePipelined = core.SchemePipelined
)

// CSB column mapping policies (§IV-B).
const (
	CSBDynamic  = csb.Dynamic
	CSBOneToOne = csb.OneToOne
)

// Traversal directions for Options.Direction. DirectionAuto switches between
// top-down (push) and bottom-up (pull) per superstep per rank using a
// frontier-occupancy heuristic; see docs/architecture.md.
const (
	DirectionPush = core.DirectionPush
	DirectionPull = core.DirectionPull
	DirectionAuto = core.DirectionAuto
)

// StragglerPolicy selects the gray-failure mitigation for group runs
// (Options.StragglerPolicy): what the supervisor does when a rank's EWMA
// superstep latency stays over Options.StragglerThreshold long enough to
// confirm it as a straggler. See docs/robustness.md.
type StragglerPolicy = core.StragglerPolicy

// Straggler mitigation policies for Options.StragglerPolicy.
const (
	StragglerOff         = core.StragglerOff
	StragglerDemote      = core.StragglerDemote
	StragglerDemoteRehab = core.StragglerDemoteRehab
)

// ParseStragglerPolicy parses "off", "demote", or "demote-rehab".
func ParseStragglerPolicy(s string) (StragglerPolicy, error) { return core.ParseStragglerPolicy(s) }

// DefaultGenBatch is the recommended Options.GenBatchSize for batched
// pipelined message generation; the default (0 or 1) is the paper's
// per-element SPSC handoff. See docs/pipeline.md.
const DefaultGenBatch = core.DefaultGenBatch

// CPU returns the modeled Xeon E5-2680 (16 cores, SSE4.2).
func CPU() DeviceSpec { return machine.CPU() }

// MIC returns the modeled Xeon Phi SE10P (60x4 threads, IMCI).
func MIC() DeviceSpec { return machine.MIC() }

// Run executes a float32-message application on one modeled device.
func Run(app AppF32, g *Graph, opt Options) (Result, error) { return core.RunF32(app, g, opt) }

// RunHetero executes a float32-message application across a device group.
// assign maps each vertex to a rank in [0, len(deviceOpts)); the classic
// CPU+MIC pair is the two-Options call with ranks 0 (CPU) and 1 (MIC).
// Alternatively pass a single Options whose Devices field lists the group.
// RunHetero is an alias of RunF32Hetero, kept for existing callers.
func RunHetero(app AppF32, g *Graph, assign []int32, deviceOpts ...Options) (HeteroResult, error) {
	return core.RunF32Hetero(app, g, assign, deviceOpts...)
}

// RunF32Hetero executes a float32-message application across an N-rank
// device group. Each Options value configures one rank, in rank order;
// alternatively a single Options with Devices set declares the whole group
// (every rank inherits the remaining fields). All ranks run the same BSP
// superstep in lockstep, exchanging boundary messages all-to-all.
//
// Fault tolerance composes with the group: with checkpointing enabled a
// failed rank is identified by majority quorum, the survivors restore the
// last checkpoint and continue over the surviving subset, and with
// Options.Rejoin the failed rank re-enters at its recovery superstep.
// HeteroResult.Dev holds one Result per rank.
func RunF32Hetero(app AppF32, g *Graph, assign []int32, deviceOpts ...Options) (HeteroResult, error) {
	return core.RunF32Hetero(app, g, assign, deviceOpts...)
}

// RunOMP executes the OpenMP-style baseline for comparison (§V-C).
func RunOMP(app AppF32, g *Graph, dev DeviceSpec, threads, maxIters int) (OMPResult, error) {
	return ompbase.RunF32(app, g, dev, threads, maxIters)
}

// Fault tolerance (see docs/robustness.md).
type (
	// FaultPlan is a deterministic schedule of injected faults.
	FaultPlan = fault.Plan
	// FaultEvent is one scheduled fault (rank, kind, superstep, ...).
	FaultEvent = fault.Event
	// FaultInjector executes a plan; set it on Options.Fault.
	FaultInjector = fault.Injector
	// FaultKind is the fault class (drop, delay, fail, panic).
	FaultKind = fault.Kind
	// FaultPhase names the engine phase a panic fault fires in.
	FaultPhase = fault.Phase
	// DeviceFailedError reports a rank that died, stalled past the
	// exchange deadline, or exhausted link retries in a hetero run.
	DeviceFailedError = comm.DeviceFailedError
	// PartitionedError reports a network partition that split the device
	// group in two: the quorum (majority) side continues degraded, the
	// minority side is fenced and aborts with this error naming both sides.
	PartitionedError = comm.PartitionedError
	// LinkSeveredError reports the links one rank lost to an active
	// partition (the per-rank view the supervisor folds into a
	// PartitionedError when every side agrees on the split).
	LinkSeveredError = comm.LinkSeveredError
	// LinkStat is one directed link's whole-run traffic, exposed on
	// HeteroResult.Links.
	LinkStat = comm.LinkStat
	// IntegrityStats aggregates wire-integrity counters (corrupt/dup/stale
	// drops, retransmits), exposed on HeteroResult.Integrity.
	IntegrityStats = comm.IntegrityStats
	// InvalidOptionsError reports a rejected Options field or nil
	// app/graph argument at Run entry.
	InvalidOptionsError = core.InvalidOptionsError
	// RunAbortedError reports a run stopped cooperatively via Options.Abort
	// at a superstep boundary; the accompanying result is the partial run.
	RunAbortedError = core.RunAbortedError
	// Snapshotter is implemented by applications whose vertex state can be
	// checkpointed (required when Options.CheckpointEvery > 0). The bundled
	// PageRank, BFS, SSSP, and ConnectedComponents apps implement it.
	Snapshotter = checkpoint.Snapshotter
	// AbortController owns an Options.Abort channel: explicit Abort calls,
	// wall-clock deadlines (AbortAfter), and parent channels (Follow) all
	// converge on the one channel the engine watches. hetgraph-run's signal
	// handler and -job-timeout, and hetgraph-serve's per-job deadlines,
	// cancellation, and drain all go through it.
	AbortController = core.AbortController
	// DaemonFaults is a registry of daemon-level chaos hooks (park a
	// worker, fail a journal append) used by hetgraph-serve's overload and
	// crash tests; see fault.Point* for the hook points.
	DaemonFaults = fault.DaemonFaults
)

// NewAbortController creates a controller whose channel is open; set
// Options.Abort to its Channel.
func NewAbortController() *AbortController { return core.NewAbortController() }

// NewDaemonFaults creates an empty daemon fault-hook registry.
func NewDaemonFaults() *DaemonFaults { return fault.NewDaemonFaults() }

// Fault kinds and phases for hand-built plans.
const (
	FaultDrop      = fault.KindDrop
	FaultDelay     = fault.KindDelay
	FaultFail      = fault.KindFail
	FaultPanic     = fault.KindPanic
	FaultFlaky     = fault.KindFlaky
	FaultRecover   = fault.KindRecover
	FaultSlow      = fault.KindSlow
	FaultGSlow     = fault.KindGSlow
	FaultCorrupt   = fault.KindCorrupt
	FaultDup       = fault.KindDup
	FaultReorder   = fault.KindReorder
	FaultPartition = fault.KindPartition
	FaultHeal      = fault.KindHeal

	FaultPhaseGenerate = fault.PhaseGenerate
	FaultPhaseProcess  = fault.PhaseProcess
	FaultPhaseUpdate   = fault.PhaseUpdate
)

// ParseFaultPlan parses a fault-plan spec like
// "rank1:drop@3;rank0:delay@2:5ms;rank1:fail@2x3;rank0:panic@4:generate".
func ParseFaultPlan(spec string) (FaultPlan, error) { return fault.Parse(spec) }

// NewFaultInjector builds an injector for a validated plan.
func NewFaultInjector(p FaultPlan) (*FaultInjector, error) { return fault.NewInjector(p) }

// RandomFaultPlan draws n valid fault events with supersteps below maxStep,
// deterministically from seed — handy for chaos testing.
func RandomFaultPlan(seed, maxStep int64, n int) FaultPlan { return fault.Random(seed, maxStep, n) }

// RandomGroupFaultPlan is RandomFaultPlan for an N-rank device group: it can
// additionally draw wire-integrity faults (corrupt, dup, reorder) and
// two-sided partitions with paired heals over the given rank count.
func RandomGroupFaultPlan(seed, maxStep int64, n, ranks int) FaultPlan {
	return fault.RandomGroup(seed, maxStep, n, ranks)
}

// Durable checkpointing (see docs/robustness.md). A heterogeneous run with
// Options.CheckpointDir set commits every in-memory checkpoint to disk
// atomically; Options.Resume cold-starts from the newest intact generation.
type (
	// CheckpointStore persists snapshot generations to a directory with
	// atomic commits, CRC32C verification, a manifest, and retention.
	CheckpointStore = checkpoint.Store
	// CheckpointStoreOptions configures OpenCheckpointStore.
	CheckpointStoreOptions = checkpoint.StoreOptions
	// CheckpointSnapshot is one captured superstep (frontiers + app state).
	CheckpointSnapshot = checkpoint.Snapshot
	// CheckpointGen describes one on-disk generation (manifest entry).
	CheckpointGen = checkpoint.Gen
	// CheckpointStoreError reports a failed durable-store operation; a
	// hetero run aborts (rather than degrades) when it sees one, since the
	// shared store is what recovery itself depends on.
	CheckpointStoreError = checkpoint.StoreError
	// CorruptInputError reports malformed graph-file input, attributed to
	// the offending line for the text format.
	CorruptInputError = graph.CorruptInputError
	// CheckpointJournal is the append-only CRC-framed record log the serve
	// daemon journals job state through (see docs/serving.md); it lives in
	// the same directory protocol family as the CheckpointStore.
	CheckpointJournal = checkpoint.Journal
)

// OpenCheckpointJournal opens (creating or replaying) the journal in dir for
// inspection or custom daemons; hetgraph-serve opens its own.
func OpenCheckpointJournal(dir string) (*CheckpointJournal, error) {
	return checkpoint.OpenJournal(dir, nil)
}

// DefaultCheckpointRetain is the default number of newest on-disk
// checkpoint generations kept by a CheckpointStore.
const DefaultCheckpointRetain = checkpoint.DefaultRetain

// ErrNoCheckpoint is wrapped by CheckpointStore.Load (and surfaced through
// Options.Resume) when the directory holds no decodable checkpoint.
var ErrNoCheckpoint = checkpoint.ErrNoCheckpoint

// OpenCheckpointStore opens (or creates) a durable checkpoint directory for
// direct inspection or custom recovery tooling. Engine runs open their own
// store from Options.CheckpointDir; most callers never need this.
func OpenCheckpointStore(dir string, opts CheckpointStoreOptions) (*CheckpointStore, error) {
	return checkpoint.OpenStore(dir, opts)
}

// Partitioning (§IV-E).
type (
	// Ratio is the CPU:MIC workload ratio.
	Ratio = partition.Ratio
	// PartitionMethod identifies a partitioning scheme.
	PartitionMethod = partition.Method
)

// Partitioning methods.
const (
	PartitionContinuous = partition.MethodContinuous
	PartitionRoundRobin = partition.MethodRoundRobin
	PartitionHybrid     = partition.MethodHybrid
)

// Partition computes a device assignment with the given method at ratio r.
func Partition(method PartitionMethod, g *Graph, r Ratio) ([]int32, error) {
	return partition.Make(method, g, r)
}

// PartitionN computes an N-rank device assignment with the given method,
// splitting the edge workload in proportion to weights — one positive
// integer per rank. The two-rank Ratio form is PartitionN with weights
// {A, B}; use DeviceWeights for spec-proportional weights.
func PartitionN(method PartitionMethod, g *Graph, weights []int) ([]int32, error) {
	return partition.MakeN(method, g, weights)
}

// DeviceWeights derives spec-proportional partition weights for a device
// group: each rank's weight is its hardware thread count (the CPU+MIC pair
// yields 16:240).
func DeviceWeights(devs ...DeviceSpec) []int {
	w := make([]int, len(devs))
	for i, d := range devs {
		w[i] = d.Threads()
	}
	return w
}

// PartitionHybridBlocks runs the hybrid scheme with an explicit block count
// and Metis options.
func PartitionHybridBlocks(g *Graph, r Ratio, blocks int) ([]int32, error) {
	return partition.Hybrid(g, r, blocks, metis.DefaultOptions())
}

// CrossEdges counts edges crossing the device boundary under assign.
func CrossEdges(g *Graph, assign []int32) int64 { return partition.CrossEdges(g, assign) }

// SavePartition / LoadPartition persist device assignments (the paper's
// "graph partitioning file").
func SavePartition(path string, assign []int32) error { return partition.SaveFile(path, assign) }

// LoadPartition reads a device assignment file.
func LoadPartition(path string) ([]int32, error) { return partition.LoadFile(path) }

// Built-in applications (§V-B).
type (
	// PageRank ranks vertices by link structure.
	PageRank = apps.PageRank
	// BFS is breadth-first traversal.
	BFS = apps.BFS
	// SSSP is single-source shortest paths (the paper's running example).
	SSSP = apps.SSSP
	// TopoSort is topological sorting of a DAG.
	TopoSort = apps.TopoSort
	// SemiClustering finds overlapping interaction clusters.
	SemiClustering = apps.SemiClustering
	// ConnectedComponents labels weakly connected components.
	ConnectedComponents = apps.ConnectedComponents
	// LabelPropagation detects communities by majority label propagation.
	LabelPropagation = apps.LabelPropagation
	// LPAMsg is LabelPropagation's message type (a vote tally).
	LPAMsg = apps.LPAMsg
	// SCMsg is Semi-Clustering's message type.
	SCMsg = apps.SCMsg
	// SemiClusterValue is one semi-cluster.
	SemiClusterValue = apps.SemiCluster
)

// NewPageRank creates a PageRank app (damping 0.85; run length set by
// Options.MaxIterations).
func NewPageRank() *PageRank { return apps.NewPageRank() }

// NewBFS creates a BFS app from the given source.
func NewBFS(source VertexID) *BFS { return apps.NewBFS(source) }

// NewSSSP creates an SSSP app from the given source (weighted graph).
func NewSSSP(source VertexID) *SSSP { return apps.NewSSSP(source) }

// NewTopoSort creates a TopoSort app (DAG input).
func NewTopoSort() *TopoSort { return apps.NewTopoSort() }

// NewConnectedComponents creates a weakly-connected-components app
// (min-label propagation; run on a symmetrized graph for undirected
// semantics).
func NewConnectedComponents() *ConnectedComponents { return apps.NewConnectedComponents() }

// NewLabelPropagation creates a community-detection app (synchronous LPA;
// structured messages, so it runs on the generic path like Semi-Clustering).
func NewLabelPropagation() *LabelPropagation { return apps.NewLabelPropagation() }

// RunLabelPropagation executes Label Propagation on one modeled device.
// Bound the run with Options.MaxIterations (synchronous LPA can oscillate).
func RunLabelPropagation(app *LabelPropagation, g *Graph, opt Options) (Result, error) {
	return core.RunGeneric[apps.LPAMsg](app, g, opt)
}

// RunLabelPropagationHetero executes Label Propagation across a device
// group (one Options per rank, or a single Options with Devices set).
func RunLabelPropagationHetero(app *LabelPropagation, g *Graph, assign []int32, deviceOpts ...Options) (HeteroResult, error) {
	return core.RunGenericHetero[apps.LPAMsg](app, g, assign, deviceOpts...)
}

// NewSemiClustering creates a Semi-Clustering app.
func NewSemiClustering(maxClusters, maxMembers int, boundaryFactor float32) *SemiClustering {
	return apps.NewSemiClustering(maxClusters, maxMembers, boundaryFactor)
}

// RunSemiClustering executes Semi-Clustering on one modeled device (it uses
// the structured-message path, not SIMD reduction).
func RunSemiClustering(app *SemiClustering, g *Graph, opt Options) (Result, error) {
	return core.RunGeneric[apps.SCMsg](app, g, opt)
}

// RunSemiClusteringHetero executes Semi-Clustering across a device group
// (one Options per rank, or a single Options with Devices set).
func RunSemiClusteringHetero(app *SemiClustering, g *Graph, assign []int32, deviceOpts ...Options) (HeteroResult, error) {
	return core.RunGenericHetero[apps.SCMsg](app, g, assign, deviceOpts...)
}

// VerifyAgainstSequential checks an already-run application's vertex state
// against an independent classical reference implementation (Dijkstra,
// queue BFS, power iteration, Kahn, union-find). It returns whether the
// result matches and a human-readable detail line. iters must equal the
// parallel run's iteration bound for fixed-length apps (PageRank).
func VerifyAgainstSequential(appName string, app AppF32, g *Graph, source VertexID, iters int) (bool, string) {
	switch a := app.(type) {
	case *SSSP:
		want := seqref.ClassicSSSP(g, source)
		for v := range want {
			if a.Dist[v] != want[v] {
				return false, fmt.Sprintf("sssp: dist[%d] = %v, Dijkstra says %v", v, a.Dist[v], want[v])
			}
		}
		return true, fmt.Sprintf("sssp distances match Dijkstra on %d vertices", g.NumVertices())
	case *BFS:
		want := seqref.ClassicBFS(g, source)
		for v := range want {
			if a.Levels[v] != want[v] {
				return false, fmt.Sprintf("bfs: level[%d] = %d, reference says %d", v, a.Levels[v], want[v])
			}
		}
		return true, fmt.Sprintf("bfs levels match reference on %d vertices", g.NumVertices())
	case *TopoSort:
		if !seqref.ValidTopoOrder(g, a.Order) {
			return false, "toposort: order violates an edge or is not a permutation"
		}
		return true, fmt.Sprintf("toposort order valid for all %d edges", g.NumEdges())
	case *PageRank:
		if iters <= 0 {
			return false, "pagerank verification needs the iteration count"
		}
		want := seqref.ClassicPageRank(g, 0.85, iters)
		for v := range want {
			diff := math.Abs(float64(a.Ranks[v] - want[v]))
			if diff > 1e-3*math.Max(1, float64(want[v])) {
				return false, fmt.Sprintf("pagerank: rank[%d] = %v, power iteration says %v", v, a.Ranks[v], want[v])
			}
		}
		return true, fmt.Sprintf("pagerank matches %d power iterations (tol 1e-3)", iters)
	case *ConnectedComponents:
		want := seqref.ClassicWCC(g)
		for v := range want {
			if a.Labels[v] != float32(want[v]) {
				return false, fmt.Sprintf("cc: label[%d] = %v, union-find says %d", v, a.Labels[v], want[v])
			}
		}
		return true, fmt.Sprintf("component labels match union-find (%d components)", a.NumComponents())
	default:
		return false, fmt.Sprintf("no sequential reference for app %q", appName)
	}
}

// Tracing.
type (
	// TraceRecorder collects a per-superstep, per-phase timeline of a run;
	// attach one via Options.Trace.
	TraceRecorder = trace.Recorder
	// TraceSample is one phase of one superstep on one device.
	TraceSample = trace.Sample
	// TraceSummary aggregates a recording.
	TraceSummary = trace.Summary
)

// NewTraceRecorder creates an empty run-timeline recorder.
func NewTraceRecorder() *TraceRecorder { return trace.NewRecorder() }

// FormatTraceSummary renders a trace summary as text.
func FormatTraceSummary(s TraceSummary) string { return trace.FormatSummary(s) }

// Run-report metrics (see docs/observability.md). Unlike tracing, which
// records only simulated device time, the metrics layer records measured
// host wall-clock per phase alongside the simulated time, plus an
// operational event log (checkpoints, failures, degradation, resume).
type (
	// MetricsSink receives wall-clock phase samples and runtime events;
	// attach one via Options.Metrics. nil disables collection with one
	// branch per superstep and no allocation on the hot path.
	MetricsSink = metrics.Sink
	// MetricsCollector is the standard thread-safe MetricsSink; it also
	// backs the -debug-addr HTTP endpoints.
	MetricsCollector = metrics.Collector
	// MetricsPhaseSample is one phase of one superstep on one device, with
	// both measured wall time and simulated device time.
	MetricsPhaseSample = metrics.PhaseSample
	// MetricsEvent is one timestamped operational event.
	MetricsEvent = metrics.Event
	// RunReport is the versioned, machine-readable record of one run.
	RunReport = metrics.RunReport
	// RunReportGraph fingerprints the input graph inside a RunReport.
	RunReportGraph = metrics.GraphInfo
	// RunReportConfig echoes one rank's engine options inside a RunReport.
	RunReportConfig = metrics.RunConfig
	// RunReportDevice is one device's whole-run aggregate inside a RunReport.
	RunReportDevice = metrics.DeviceReport
	// RunReportTotals is the run-level outcome inside a RunReport.
	RunReportTotals = metrics.Totals
	// RunReportPhases is a simulated per-phase breakdown inside a RunReport.
	RunReportPhases = metrics.PhaseSeconds
	// RunReportLink is one directed link's traffic/retransmit record inside
	// a RunReport.
	RunReportLink = metrics.LinkActivity
	// RunReportIntegrity aggregates wire-integrity counters inside the
	// metrics layer (mirrors IntegrityStats).
	RunReportIntegrity = metrics.IntegritySnapshot
	// DebugServer is the HTTP listener behind -debug-addr (pprof, expvar,
	// Prometheus text metrics).
	DebugServer = metrics.DebugServer
)

// ReportVersion is the current RunReport schema version (see
// docs/observability.md for the compatibility rule).
const ReportVersion = metrics.ReportVersion

// NewMetricsCollector creates an empty metrics collector.
func NewMetricsCollector() *MetricsCollector { return metrics.NewCollector() }

// WriteRunReport writes a report as indented JSON to path.
func WriteRunReport(path string, r *RunReport) error { return metrics.WriteReportFile(path, r) }

// ReadRunReport reads and validates a report, rejecting unknown schema
// versions.
func ReadRunReport(path string) (*RunReport, error) { return metrics.ReadReportFile(path) }

// StartDebugServer starts an HTTP listener on addr serving /debug/pprof/,
// /debug/vars (expvar), and /metrics (Prometheus text format) backed by the
// given collector. Close the returned server when done.
func StartDebugServer(addr string, c *MetricsCollector) (*DebugServer, error) {
	return metrics.StartDebugServer(addr, c)
}

// Auto-tuning (the paper's §VII future work, implemented).
type (
	// TuneBudget bounds auto-tuning probe effort.
	TuneBudget = autotune.Budget
	// SplitResult reports a worker/mover tuning outcome.
	SplitResult = autotune.SplitResult
	// RatioResult reports a partitioning-ratio tuning outcome.
	RatioResult = autotune.RatioResult
	// BatchResult reports a generation-batch-size tuning outcome.
	BatchResult = autotune.BatchResult
	// BatchProbe is one candidate batch size's measurement.
	BatchProbe = autotune.BatchProbe
)

// TuneWorkerMoverSplit searches the pipelined scheme's worker/mover split
// for one device by probing short real runs of the application.
func TuneWorkerMoverSplit(newApp func() AppF32, g *Graph, dev DeviceSpec, budget TuneBudget) (SplitResult, error) {
	return autotune.TuneSplit(autotune.AppFactory(newApp), g, dev, budget)
}

// TunePartitionRatio searches the CPU:MIC workload ratio for heterogeneous
// execution under the given partitioning method.
func TunePartitionRatio(newApp func() AppF32, g *Graph, method PartitionMethod, optCPU, optMIC Options, budget TuneBudget) (RatioResult, error) {
	return autotune.TuneRatio(autotune.AppFactory(newApp), g, method, optCPU, optMIC, budget)
}

// TuneGenBatchSize searches the pipelined scheme's worker→mover handoff
// batch size (Options.GenBatchSize) for one device by probing short real
// runs of the application, including the per-element baseline (batch 1).
func TuneGenBatchSize(newApp func() AppF32, g *Graph, dev DeviceSpec, budget TuneBudget) (BatchResult, error) {
	return autotune.TuneGenBatch(autotune.AppFactory(newApp), g, dev, budget)
}
