// Command hetgraph-gen generates synthetic input graphs in the framework's
// adjacency-list format: the power-law (Pokec-like), community (DBLP-like),
// layered-DAG, and uniform generators described in DESIGN.md.
//
// Usage:
//
//	hetgraph-gen -type powerlaw -n 60000 -out pokec.adj
//	hetgraph-gen -type powerlaw -n 60000 -weighted -out pokecw.adj
//	hetgraph-gen -type community -n 24000 -out dblp.adj
//	hetgraph-gen -type dag -n 2500 -m 1000000 -out dag.adj
//	hetgraph-gen -type uniform -n 10000 -m 200000 -out rand.adj
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"hetgraph"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hetgraph-gen: ")
	var (
		typ      = flag.String("type", "powerlaw", "graph type: powerlaw | community | dag | uniform | rmat")
		n        = flag.Int("n", 10000, "number of vertices")
		m        = flag.Int("m", 0, "number of edges (dag/uniform; 0 = 20x vertices)")
		seed     = flag.Int64("seed", 42, "generator seed")
		weighted = flag.Bool("weighted", false, "attach uniform random edge weights in (0,100]")
		binOut   = flag.Bool("binary", false, "write the compact binary CSR format instead of text")
		out      = flag.String("out", "", "output path (required)")
	)
	flag.Parse()
	if *out == "" {
		flag.Usage()
		os.Exit(2)
	}
	if *m == 0 {
		*m = 20 * *n
	}

	var (
		g   *hetgraph.Graph
		err error
	)
	switch *typ {
	case "powerlaw":
		cfg := hetgraph.DefaultPowerLaw(*n)
		cfg.Seed = *seed
		g, err = hetgraph.GeneratePowerLaw(cfg)
	case "community":
		cfg := hetgraph.DefaultCommunity(*n)
		cfg.Seed = *seed
		g, err = hetgraph.GenerateCommunity(cfg)
	case "dag":
		cfg := hetgraph.DefaultDAG(*n, *m)
		cfg.Seed = *seed
		g, err = hetgraph.GenerateDAG(cfg)
	case "uniform":
		g, err = hetgraph.GenerateUniform(*n, *m, *seed)
	case "rmat":
		// -n is interpreted as the scale when it is small, else log2(n).
		scale := *n
		if scale > 24 {
			scale = 0
			for v := *n; v > 1; v >>= 1 {
				scale++
			}
		}
		cfg := hetgraph.DefaultRMAT(scale)
		cfg.Seed = *seed
		g, err = hetgraph.GenerateRMAT(cfg)
	default:
		log.Fatalf("unknown -type %q", *typ)
	}
	if err != nil {
		log.Fatal(err)
	}
	if *weighted && !g.Weighted() {
		g, err = hetgraph.AddRandomWeights(g, 0, 100, *seed+1)
		if err != nil {
			log.Fatal(err)
		}
	}
	save := hetgraph.SaveGraph
	if *binOut {
		save = hetgraph.SaveGraphBinary
	}
	if err := save(*out, g); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s: %s\n", *out, hetgraph.Stats(g))
}
