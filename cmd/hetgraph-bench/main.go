// Command hetgraph-bench regenerates the paper's evaluation artifacts —
// Figures 5(a)–5(f), Figure 6, and Table II — plus the ablation sweeps, on
// the simulated CPU/MIC node. Reported numbers are simulated device seconds
// from the cost model over real executions; the shape notes under each
// table state the corresponding observation from the paper for comparison.
//
// Usage:
//
//	hetgraph-bench                 # everything, full scale
//	hetgraph-bench -scale small    # quicker, smaller workloads
//	hetgraph-bench -only 5a,6,t2   # selected artifacts
//	hetgraph-bench -out results/   # also write one text file per artifact
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"hetgraph"
	"hetgraph/internal/bench"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hetgraph-bench: ")
	var (
		scaleName = flag.String("scale", "full", "workload scale: small | full")
		only      = flag.String("only", "", "comma-separated artifact list (5a,5b,5c,5d,5e,5f,6,t2,dir,straggler,ablation); empty = all")
		outDir    = flag.String("out", "", "directory to write per-artifact text files (optional)")
		report    = flag.String("report", "", "write a versioned JSON run report with per-artifact wall timing to this path")
		artifact  = flag.String("artifact", "", "write the direction ablation (A8) as a versioned BENCH JSON perf artifact to this path")
		strArt    = flag.String("straggler-artifact", "", "write the straggler-mitigation ablation (A9) as a versioned BENCH JSON perf artifact to this path")
		checkPath = flag.String("check-artifact", "", "read and validate a BENCH JSON perf artifact, then exit")
		debugAddr = flag.String("debug-addr", "", `serve /debug/pprof/, /debug/vars, and /metrics on this address while the suite runs`)
	)
	flag.Parse()

	if *checkPath != "" {
		a, err := bench.ReadArtifact(*checkPath)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: valid (schema v%d, figure %s, %d rows, scale %s)\n",
			*checkPath, a.SchemaVersion, a.Figure.ID, len(a.Figure.Rows), a.Scale)
		return
	}

	suiteStart := time.Now()
	var col *hetgraph.MetricsCollector
	if *report != "" || *debugAddr != "" {
		col = hetgraph.NewMetricsCollector()
	}
	if *debugAddr != "" {
		dbg, err := hetgraph.StartDebugServer(*debugAddr, col)
		if err != nil {
			log.Fatal(err)
		}
		defer dbg.Close()
		fmt.Printf("debug server on http://%s (/debug/pprof/, /debug/vars, /metrics)\n", dbg.Addr())
	}

	var scale bench.Scale
	switch *scaleName {
	case "small":
		scale = bench.ScaleSmall()
	case "full":
		scale = bench.ScaleFull()
	default:
		log.Fatalf("unknown -scale %q", *scaleName)
	}
	fmt.Printf("generating workloads (%s scale)...\n", scale.Name)
	w, err := bench.Load(scale)
	if err != nil {
		log.Fatal(err)
	}
	specs := bench.Specs(w)

	want := map[string]bool{}
	if *only != "" {
		for _, s := range strings.Split(*only, ",") {
			want[strings.TrimSpace(strings.ToLower(s))] = true
		}
	}
	sel := func(id string) bool { return len(want) == 0 || want[strings.ToLower(id)] }

	// Each artifact is computed while its result is being passed to emit, so
	// the gap since the previous emit is that artifact's wall time.
	lastEmit := time.Now()
	emit := func(fig bench.Figure, err error) {
		if err != nil {
			log.Fatalf("%s: %v", fig.ID, err)
		}
		if col != nil {
			col.RecordEvent(hetgraph.MetricsEvent{
				UnixNano: time.Now().UnixNano(), Kind: "artifact", Rank: -1, Superstep: -1,
				WallNS: time.Since(lastEmit).Nanoseconds(), Detail: fig.ID + ": " + fig.Title,
			})
		}
		lastEmit = time.Now()
		text := bench.Format(fig)
		fmt.Print(text)
		if *outDir != "" {
			if err := os.MkdirAll(*outDir, 0o755); err != nil {
				log.Fatal(err)
			}
			path := filepath.Join(*outDir, "fig"+fig.ID+".txt")
			if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
				log.Fatal(err)
			}
		}
	}

	for _, spec := range specs {
		id := map[string]string{"PageRank": "5a", "BFS": "5b", "SC": "5c", "SSSP": "5d", "TopoSort": "5e"}[spec.Name]
		if sel(id) {
			emit(bench.Fig5(spec))
		}
	}
	if sel("5f") {
		emit(bench.Fig5f(w))
	}
	if sel("6") {
		emit(bench.Fig6(w))
	}
	if sel("t2") {
		emit(bench.Table2(w))
	}
	if sel("ablation") {
		pr, err := bench.SpecByName(specs, "PageRank")
		if err != nil {
			log.Fatal(err)
		}
		topo, err := bench.SpecByName(specs, "TopoSort")
		if err != nil {
			log.Fatal(err)
		}
		emit(bench.AblationCSBMode(topo))
		emit(bench.AblationGroupFactor(pr))
		emit(bench.AblationMoverSplit(topo))
		emit(bench.AblationMetisBlocks(pr))
		emit(bench.AblationChunkSize(pr))
		emit(bench.AblationRatioSweep(pr))
		emit(bench.AblationGenScheme(pr))
	}
	if sel("dir") || *artifact != "" {
		bfs, err := bench.SpecByName(specs, "BFS")
		if err != nil {
			log.Fatal(err)
		}
		fig, err := bench.AblationDirection(bfs)
		emit(fig, err)
		if *artifact != "" {
			a := bench.NewArtifact(fig, "hetgraph-bench -only dir -artifact", scale.Name)
			if err := a.Validate(); err != nil {
				log.Fatalf("direction ablation failed its acceptance check: %v", err)
			}
			if err := bench.WriteArtifact(*artifact, a); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("perf artifact written to %s\n", *artifact)
		}
	}
	if sel("straggler") || *strArt != "" {
		pr, err := bench.SpecByName(specs, "PageRank")
		if err != nil {
			log.Fatal(err)
		}
		fig, err := bench.AblationStraggler(pr)
		emit(fig, err)
		if *strArt != "" {
			a := bench.NewArtifact(fig, "hetgraph-bench -only straggler -straggler-artifact", scale.Name)
			if err := a.Validate(); err != nil {
				log.Fatalf("straggler ablation failed its acceptance check: %v", err)
			}
			if err := bench.WriteArtifact(*strArt, a); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("perf artifact written to %s\n", *strArt)
		}
	}
	if col != nil && *report != "" {
		rep := col.Report()
		rep.Tool = "hetgraph-bench"
		rep.App = "suite-" + scale.Name
		rep.Totals = hetgraph.RunReportTotals{WallSeconds: time.Since(suiteStart).Seconds()}
		rep.Seal()
		if err := hetgraph.WriteRunReport(*report, rep); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("run report written to %s\n", *report)
	}
}
