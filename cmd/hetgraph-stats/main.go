// Command hetgraph-stats inspects a graph file: degree statistics, in/out
// degree histograms and percentiles, DAG check, and the estimated Condensed
// Static Buffer footprint on both devices — everything one needs to know
// before choosing a partitioning ratio and scheme.
//
// Usage:
//
//	hetgraph-stats -graph pokec.adj
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"hetgraph"
	"hetgraph/internal/csb"
	"hetgraph/internal/graph"
	"hetgraph/internal/machine"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hetgraph-stats: ")
	graphPath := flag.String("graph", "", "input graph file (required)")
	flag.Parse()
	if *graphPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	g, err := hetgraph.LoadGraph(*graphPath)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(hetgraph.Stats(g))
	fmt.Println("weighted:", g.Weighted(), " DAG:", g.IsDAG())

	out := g.OutDegrees()
	in := g.InDegrees()
	fmt.Printf("\nout-degree percentiles: p50=%d p90=%d p99=%d max=%d\n",
		graph.Percentile(out, 50), graph.Percentile(out, 90), graph.Percentile(out, 99), graph.Percentile(out, 100))
	fmt.Printf("in-degree  percentiles: p50=%d p90=%d p99=%d max=%d\n",
		graph.Percentile(in, 50), graph.Percentile(in, 90), graph.Percentile(in, 99), graph.Percentile(in, 100))

	fmt.Println("\nin-degree histogram (power-of-two bins):")
	printHistogram(graph.DegreeHistogram(in))

	// CSB footprint per device (k = 2, the default).
	for _, dev := range []machine.DeviceSpec{machine.CPU(), machine.MIC()} {
		buf, err := csb.BuildFromDegrees(in, csb.Config{Width: dev.SIMDWidth, K: 2})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nCSB on %s (width %d, k=2): %.2f MB condensed vs %.2f MB naive (%.1fx saving), %d groups, %d tasks\n",
			dev.Name, dev.SIMDWidth,
			float64(buf.FootprintBytes())/(1<<20), float64(buf.NaiveFootprintBytes())/(1<<20),
			float64(buf.NaiveFootprintBytes())/float64(buf.FootprintBytes()),
			buf.NumGroups(), buf.NumTasks())
	}
}

func printHistogram(bins []int64) {
	var maxCount int64
	for _, c := range bins {
		if c > maxCount {
			maxCount = c
		}
	}
	if maxCount == 0 {
		fmt.Println("  (empty)")
		return
	}
	for i, c := range bins {
		lo, hi := 0, 0
		if i > 0 {
			lo, hi = 1<<(i-1), 1<<i-1
		}
		bar := int(40 * c / maxCount)
		label := fmt.Sprintf("%d-%d", lo, hi)
		if i == 0 {
			label = "0"
		}
		fmt.Printf("  %-12s %10d %s\n", label, c, stars(bar))
	}
}

func stars(n int) string {
	s := make([]byte, n)
	for i := range s {
		s[i] = '#'
	}
	return string(s)
}
