// Command hetgraph-part produces the graph partitioning file consumed by
// heterogeneous runs: which device (0 = CPU, 1 = MIC) owns each vertex,
// using the continuous, round-robin, or hybrid scheme of §IV-E.
//
// Usage:
//
//	hetgraph-part -graph pokec.adj -method hybrid -ratio 3:5 -out pokec.part
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"hetgraph"
)

func parseRatio(s string) (hetgraph.Ratio, error) {
	a, b, ok := strings.Cut(s, ":")
	if !ok {
		return hetgraph.Ratio{}, fmt.Errorf("ratio %q not in a:b form", s)
	}
	av, err := strconv.Atoi(a)
	if err != nil {
		return hetgraph.Ratio{}, err
	}
	bv, err := strconv.Atoi(b)
	if err != nil {
		return hetgraph.Ratio{}, err
	}
	r := hetgraph.Ratio{A: av, B: bv}
	return r, r.Validate()
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("hetgraph-part: ")
	var (
		graphPath = flag.String("graph", "", "input graph file (required)")
		method    = flag.String("method", "hybrid", "partitioning method: continuous | roundrobin | hybrid")
		ratioStr  = flag.String("ratio", "1:1", "CPU:MIC workload ratio, e.g. 3:5")
		blocks    = flag.Int("blocks", 0, "hybrid block count (0 = scale with the graph)")
		out       = flag.String("out", "", "output partition file (required)")
	)
	flag.Parse()
	if *graphPath == "" || *out == "" {
		flag.Usage()
		os.Exit(2)
	}
	g, err := hetgraph.LoadGraph(*graphPath)
	if err != nil {
		log.Fatal(err)
	}
	ratio, err := parseRatio(*ratioStr)
	if err != nil {
		log.Fatal(err)
	}
	var assign []int32
	switch *method {
	case "continuous":
		assign, err = hetgraph.Partition(hetgraph.PartitionContinuous, g, ratio)
	case "roundrobin":
		assign, err = hetgraph.Partition(hetgraph.PartitionRoundRobin, g, ratio)
	case "hybrid":
		if *blocks > 0 {
			assign, err = hetgraph.PartitionHybridBlocks(g, ratio, *blocks)
		} else {
			assign, err = hetgraph.Partition(hetgraph.PartitionHybrid, g, ratio)
		}
	default:
		log.Fatalf("unknown -method %q", *method)
	}
	if err != nil {
		log.Fatal(err)
	}
	if err := hetgraph.SavePartition(*out, assign); err != nil {
		log.Fatal(err)
	}
	cross := hetgraph.CrossEdges(g, assign)
	fmt.Printf("wrote %s: %s partitioning at %s, %d cross edges (%.1f%% of %d)\n",
		*out, *method, *ratioStr, cross, 100*float64(cross)/float64(g.NumEdges()), g.NumEdges())
}
