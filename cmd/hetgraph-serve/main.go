// Command hetgraph-serve is the long-lived job daemon: it loads and
// partitions a graph once, then serves concurrent analytics jobs (pagerank,
// bfs, sssp, cc) over HTTP/JSON with bounded admission, per-job wall
// deadlines, capped-backoff retries, and a durable job journal — a kill -9'd
// daemon restarted on the same -state-dir replays the journal and resumes
// in-flight jobs from their newest checkpoint. See docs/serving.md.
//
// Usage:
//
//	hetgraph-serve -graph pokec.adj -addr localhost:8080 -state-dir ./state
//	curl -d '{"algorithm":"pagerank","iterations":10}' localhost:8080/jobs
//	curl localhost:8080/jobs/j00000000
//
// SIGTERM/SIGINT drain gracefully: admission stops (new submissions get
// 429), in-flight jobs get -drain-grace to finish, stragglers are
// checkpointed and journaled for the next start, and the process exits 0.
// A second signal kills the process the default way.
//
// Exit codes: 0 clean drain, 1 runtime failure, 2 usage error.
package main

import (
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hetgraph"
	"hetgraph/internal/serve"
)

type usageError struct{ err error }

func (e usageError) Error() string { return e.err.Error() }
func (e usageError) Unwrap() error { return e.err }

func usagef(format string, args ...any) error {
	return usageError{fmt.Errorf(format, args...)}
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "hetgraph-serve:", err)
		var ue usageError
		if errors.As(err, &ue) {
			os.Exit(2)
		}
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("hetgraph-serve", flag.ContinueOnError)
	var (
		graphPath  = fs.String("graph", "", "input graph file (required)")
		addr       = fs.String("addr", "localhost:8080", "HTTP listen address for the job API")
		debugAddr  = fs.String("debug-addr", "", `also serve /debug/pprof/, /debug/vars, and /metrics on this address`)
		stateDir   = fs.String("state-dir", "", "directory for the job journal and per-job checkpoints (required; reuse it to resume)")
		partPath   = fs.String("partition", "", "partition file (omitted = continuous partition by device thread weight)")
		ranks      = fs.Int("ranks", 2, "device-group size: rank 0 is the CPU, the rest MICs")
		ckEvery    = fs.Int("checkpoint-every", 1, "checkpoint cadence for served jobs (supersteps)")
		queueDepth = fs.Int("queue", 8, "job queue depth; submissions past it are shed with HTTP 429")
		workers    = fs.Int("workers", 2, "jobs executed concurrently")
		tenantCap  = fs.Int("tenant-limit", 4, "one tenant's queued+running job bound")
		jobTimeout = fs.Duration("job-timeout", 0, "default wall deadline per job (0 = unbounded; specs may set timeout_ms)")
		retries    = fs.Int("retries", 2, "retry budget for jobs failing with retryable typed errors")
		grace      = fs.Duration("drain-grace", 10*time.Second, "how long SIGTERM lets in-flight jobs finish before checkpointing them")
	)
	if err := fs.Parse(args); err != nil {
		return usageError{err}
	}
	if *graphPath == "" {
		fs.Usage()
		return usagef("-graph is required")
	}
	if *stateDir == "" {
		fs.Usage()
		return usagef("-state-dir is required")
	}
	if *ranks < 2 {
		return usagef("-ranks must be at least 2, got %d", *ranks)
	}

	g, err := hetgraph.LoadGraph(*graphPath)
	if err != nil {
		return err
	}
	var assign []int32
	if *partPath != "" {
		if assign, err = hetgraph.LoadPartition(*partPath); err != nil {
			return err
		}
	}
	devices := make([]hetgraph.DeviceSpec, *ranks)
	devices[0] = hetgraph.CPU()
	for r := 1; r < *ranks; r++ {
		devices[r] = hetgraph.MIC()
	}

	col := hetgraph.NewMetricsCollector()
	if *debugAddr != "" {
		dbg, err := hetgraph.StartDebugServer(*debugAddr, col)
		if err != nil {
			return err
		}
		defer dbg.Close()
		fmt.Printf("debug server on http://%s (/debug/pprof/, /debug/vars, /metrics)\n", dbg.Addr())
	}

	srv, err := serve.New(serve.Config{
		Graph:           g,
		GraphPath:       *graphPath,
		Assign:          assign,
		Devices:         devices,
		StateDir:        *stateDir,
		CheckpointEvery: *ckEvery,
		QueueDepth:      *queueDepth,
		Workers:         *workers,
		TenantLimit:     *tenantCap,
		DefaultTimeout:  *jobTimeout,
		MaxRetries:      *retries,
		Metrics:         col,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		srv.Close()
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	httpErr := make(chan error, 1)
	go func() { httpErr <- httpSrv.Serve(ln) }()
	fmt.Printf("serving %s (%d vertices, %d edges) on http://%s, state in %s\n",
		*graphPath, g.NumVertices(), g.NumEdges(), ln.Addr(), *stateDir)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)
	select {
	case err := <-httpErr:
		srv.Close()
		return err
	case s := <-sigc:
		fmt.Fprintf(os.Stderr, "hetgraph-serve: received %v, draining (grace %s; signal again to kill)\n", s, *grace)
		signal.Stop(sigc)
	}
	httpSrv.Close()
	if err := srv.Drain(*grace); err != nil {
		return err
	}
	fmt.Println("drained: journal flushed, state checkpointed; exiting")
	return nil
}
