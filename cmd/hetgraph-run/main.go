// Command hetgraph-run executes one of the five evaluated applications on a
// graph file, on a single modeled device or heterogeneously across an
// N-rank device group (the classic CPU+MIC pair by default; -ranks or
// -devices for larger groups).
//
// Usage:
//
//	hetgraph-run -graph pokec.adj -app bfs -device mic -scheme lock
//	hetgraph-run -graph pokecw.adj -app sssp -device both -partition pokec.part
//	hetgraph-run -graph pokec.adj -app pagerank -iters 10 -device cpu -baseline omp
//	hetgraph-run -graph pokec.adj -app pagerank -device both -partition pokec.part \
//	    -checkpoint-every 1 -checkpoint-dir ./ckpt        # durable checkpoints
//	hetgraph-run ... -checkpoint-dir ./ckpt -resume       # cold-start from them
//	hetgraph-run ... -fault-plan 'rank1:flaky@3x2' -rejoin -checkpoint-every 1
//	                                                      # degrade, then heal
//	hetgraph-run -graph pokec.adj -app pagerank -device both -ranks 4 \
//	    -fault-plan 'rank2:drop@3;rank2:recover@5' -rejoin -checkpoint-every 1
//	                        # 4-rank group: degrade to 3 ranks, heal back to 4
//
// SIGINT/SIGTERM abort the run cleanly at the next superstep boundary: the
// final checkpoint is captured and the -report JSON is still written.
//
// Exit codes: 0 success, 1 runtime failure (including a run fenced by a
// network partition, which fails with a typed PartitionedError naming the
// majority and minority sides), 2 usage error (bad flags or invalid
// configuration), 130 aborted by SIGINT/SIGTERM.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"hetgraph"
)

// faultGrammar is printed when -fault-plan does not parse, so the operator
// does not have to dig the event syntax out of the docs mid-incident.
const faultGrammar = `fault plan grammar (events separated by ';' or ','):
  rank<r>:drop@<step>                     rank r dies at exchange round <step>
  rank<r>:delay@<step>:<duration>         rank r stalls before the round (e.g. 5ms)
  rank<r>:fail@<step>x<n>                 link fails <n> consecutive attempts
  rank<r>:panic@<step>:<phase>            panic in generate | process | update
  rank<r>:iofail@<step>:<op>              checkpoint commit fails: write | sync | rename
  rank<r>:torn@<step>                     checkpoint write silently truncated
  rank<r>:flaky@<step>[x<down>]           rank r dies at <step>, recovers <down> supersteps later (default 1)
  rank<r>:recover@<step>                  rank r recovered at <step> (pairs with an earlier failure)
  rank<r>:corrupt@<step>[x<n>]            rank r's outgoing packets corrupted in flight for <n> attempts (default 1);
                                          the receiver drops them on checksum and NACKs a retransmit
  rank<r>:slow@<step>:<duration>          rank r's compute stalls by <duration> at <step> (gray failure: the
                                          stall is charged to the rank, feeding the straggler detector)
  rank<r>:gslow@<step>x<n>:<duration>     sustained gray failure: the same stall every superstep for <n>
                                          supersteps starting at <step>
  rank<r>:dup@<step>                      rank r's packets delivered twice; duplicates are fenced by sequence
  rank<r>:reorder@<step>                  adjacent packets on rank r's links swapped; reorders are fenced
  partition@<step>:{<r>,..}|{<r>,..}      sever every link between the two rank sets; the majority side
                                          continues degraded, the minority is fenced (PartitionedError)
  heal@<step>                             end the most recent partition and readmit the fenced side
example: "rank1:drop@3;rank0:delay@2:5ms" or "partition@3:{0,1}|{2,3};heal@6"  (see docs/robustness.md)`

// usageError marks a configuration mistake (exit 2) as opposed to a
// runtime failure (exit 1).
type usageError struct{ err error }

func (e usageError) Error() string { return e.err.Error() }
func (e usageError) Unwrap() error { return e.err }

func usagef(format string, args ...any) error {
	return usageError{fmt.Errorf(format, args...)}
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "hetgraph-run:", err)
		var ue usageError
		var ioe *hetgraph.InvalidOptionsError
		if errors.As(err, &ue) || errors.As(err, &ioe) {
			os.Exit(2)
		}
		var aerr *hetgraph.RunAbortedError
		if errors.As(err, &aerr) {
			os.Exit(130)
		}
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("hetgraph-run", flag.ContinueOnError)
	var (
		graphPath  = fs.String("graph", "", "input graph file (required)")
		appName    = fs.String("app", "pagerank", "application: pagerank | bfs | sssp | toposort | cc | semicluster")
		device     = fs.String("device", "mic", "device: cpu | mic | both")
		scheme     = fs.String("scheme", "pipe", "message generation scheme: lock | pipe")
		baseline   = fs.String("baseline", "", "run a baseline instead: omp")
		partPath   = fs.String("partition", "", "partition file for -device both (ranks >2 auto-partition by thread weight when omitted)")
		ranks      = fs.Int("ranks", 2, "device-group size for -device both: rank 0 is the CPU, the rest MICs (see -devices for an explicit list)")
		devices    = fs.String("devices", "", `explicit device group for -device both, e.g. "cpu,mic,mic" (overrides -ranks)`)
		source     = fs.Int("source", 0, "source vertex for bfs/sssp")
		iters      = fs.Int("iters", 0, "iteration bound (0 = converge; pagerank default 10)")
		novec      = fs.Bool("novec", false, "disable SIMD message reduction")
		genBatch   = fs.Int("genbatch", 0, "pipelined handoff batch size (0/1 = per-element; try 64)")
		traceCSV   = fs.String("trace", "", "write a per-superstep phase timeline CSV to this path")
		verify     = fs.Bool("verify", false, "check the result against the sequential reference")
		ckEvery    = fs.Int("checkpoint-every", 0, "checkpoint vertex state every N supersteps (0 = off; -device both)")
		ckDir      = fs.String("checkpoint-dir", "", "flush checkpoints durably to this directory (atomic commits + manifest)")
		ckRetain   = fs.Int("checkpoint-retain", 0, "on-disk checkpoint generations to keep (0 = default, min 2)")
		resume     = fs.Bool("resume", false, "cold-start from the newest checkpoint in -checkpoint-dir")
		rejoin     = fs.Bool("rejoin", false, "heal after a device failure: restart the failed rank from a checkpoint when the fault plan declares it recovered (requires -checkpoint-every or -checkpoint-dir)")
		exTimeout  = fs.Duration("exchange-timeout", 0, "deadline per cross-device exchange round (0 = unbounded)")
		faultPlan  = fs.String("fault-plan", "", `inject faults, e.g. "rank1:drop@3;rank0:delay@2:5ms" (see docs/robustness.md)`)
		strThresh  = fs.Duration("straggler-threshold", 0, "EWMA superstep latency over this marks a rank suspect, sustained excess confirms a straggler (0 = health scoring off; -device both)")
		strPolicy  = fs.String("straggler-policy", "off", "straggler mitigation: off | demote | demote-rehab (demote soft-degrades a confirmed straggler at a checkpoint barrier; demote-rehab also restores it once its latency re-normalizes; requires -straggler-threshold and -checkpoint-every)")
		report     = fs.String("report", "", "write a versioned JSON run report (phases, counters, events) to this path")
		debugAddr  = fs.String("debug-addr", "", `serve /debug/pprof/, /debug/vars, and /metrics on this address (e.g. "localhost:6060")`)
		jobTimeout = fs.Duration("job-timeout", 0, "wall deadline for the run: abort at the next superstep boundary once elapsed (0 = unbounded; exit 130 with partial results, like SIGINT)")
	)
	if err := fs.Parse(args); err != nil {
		return usageError{err}
	}
	if *graphPath == "" {
		fs.Usage()
		return usagef("-graph is required")
	}

	// Graceful shutdown: SIGINT/SIGTERM and the -job-timeout deadline both
	// stop the run cooperatively at the next superstep boundary — the final
	// checkpoint is captured, the report/trace are still written, and the
	// process exits 130. A second signal kills the process the default way
	// (signal.Stop re-arms it).
	ctl := hetgraph.NewAbortController()
	defer ctl.Stop()
	abort := ctl.Channel()
	if *jobTimeout > 0 {
		ctl.AbortAfter(*jobTimeout)
	}
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)
	go func() {
		s, ok := <-sigc
		if !ok {
			return
		}
		fmt.Fprintf(os.Stderr, "hetgraph-run: received %v, aborting at the next superstep boundary (report and final checkpoint still written; signal again to kill)\n", s)
		signal.Stop(sigc)
		ctl.Abort()
	}()

	g, err := hetgraph.LoadGraph(*graphPath)
	if err != nil {
		return err
	}
	if *appName == "pagerank" && *iters == 0 {
		*iters = 10
	}

	schemeOf := func(s string) hetgraph.Scheme {
		if s == "lock" {
			return hetgraph.SchemeLocking
		}
		return hetgraph.SchemePipelined
	}
	devOf := func(s string) hetgraph.DeviceSpec {
		if s == "cpu" {
			return hetgraph.CPU()
		}
		return hetgraph.MIC()
	}

	// The metrics collector backs both -report and -debug-addr; the baseline
	// bypasses the instrumented engine entirely, so the combination is a
	// configuration mistake rather than a silently empty report.
	var col *hetgraph.MetricsCollector
	if *report != "" || *debugAddr != "" {
		if *baseline != "" {
			return usagef("-report/-debug-addr cannot be combined with -baseline (the baseline has no phase instrumentation)")
		}
		col = hetgraph.NewMetricsCollector()
	}
	if *debugAddr != "" {
		dbg, err := hetgraph.StartDebugServer(*debugAddr, col)
		if err != nil {
			return err
		}
		defer dbg.Close()
		fmt.Printf("debug server on http://%s (/debug/pprof/, /debug/vars, /metrics)\n", dbg.Addr())
	}

	if *appName == "semicluster" {
		return runSC(g, *graphPath, *device, schemeOf(*scheme), *partPath, *devices, *ranks, *iters, col, *report, abort)
	}

	var app hetgraph.AppF32
	switch *appName {
	case "pagerank":
		app = hetgraph.NewPageRank()
	case "bfs":
		app = hetgraph.NewBFS(hetgraph.VertexID(*source))
	case "sssp":
		app = hetgraph.NewSSSP(hetgraph.VertexID(*source))
	case "toposort":
		app = hetgraph.NewTopoSort()
	case "cc":
		app = hetgraph.NewConnectedComponents()
	default:
		return usagef("unknown -app %q", *appName)
	}

	if *baseline == "omp" {
		res, err := hetgraph.RunOMP(app, g, devOf(*device), 0, *iters)
		if err != nil {
			return err
		}
		fmt.Printf("%s OMP on %s: %d iterations, sim %.6fs, wall %.3fs\n",
			*appName, *device, res.Iterations, res.SimSeconds, res.WallSeconds)
		return nil
	}

	var rec *hetgraph.TraceRecorder
	if *traceCSV != "" {
		rec = hetgraph.NewTraceRecorder()
	}
	var inj *hetgraph.FaultInjector
	if *faultPlan != "" {
		plan, err := hetgraph.ParseFaultPlan(*faultPlan)
		if err != nil {
			fmt.Fprintln(os.Stderr, faultGrammar)
			return usagef("bad -fault-plan: %w", err)
		}
		if inj, err = hetgraph.NewFaultInjector(plan); err != nil {
			fmt.Fprintln(os.Stderr, faultGrammar)
			return usagef("bad -fault-plan: %w", err)
		}
	}
	policy, err := hetgraph.ParseStragglerPolicy(*strPolicy)
	if err != nil {
		return usagef("bad -straggler-policy: %w", err)
	}
	opt := hetgraph.Options{
		Scheme:           schemeOf(*scheme),
		Vectorized:       !*novec,
		MaxIterations:    *iters,
		GenBatchSize:     *genBatch,
		Trace:            rec,
		CheckpointEvery:  *ckEvery,
		CheckpointDir:    *ckDir,
		CheckpointRetain: *ckRetain,
		Resume:           *resume,
		Rejoin:           *rejoin,
		ExchangeTimeout:  *exTimeout,
		Fault:            inj,
		Abort:            abort,

		StragglerThreshold: *strThresh,
		StragglerPolicy:    policy,
	}
	if col != nil {
		// Assign through the guard: a nil *MetricsCollector stored in the
		// interface field would defeat the engine's nil-sink fast path.
		opt.Metrics = col
	}
	var (
		repConfig  []hetgraph.RunReportConfig
		repDevices []hetgraph.RunReportDevice
		repTotals  hetgraph.RunReportTotals
		// abortErr is set when the run was stopped by SIGINT/SIGTERM: the
		// partial result still flows into the summary and the report, and
		// run() returns it at the end (exit 130).
		abortErr *hetgraph.RunAbortedError
	)
	switch *device {
	case "cpu", "mic":
		if *ckDir != "" || *resume || *rejoin {
			return usagef("-checkpoint-dir/-resume/-rejoin require -device both (recovery backs the heterogeneous run)")
		}
		if policy != hetgraph.StragglerOff || *strThresh != 0 {
			return usagef("-straggler-policy/-straggler-threshold require -device both (the supervisor scores ranks of a device group)")
		}
		opt.Dev = devOf(*device)
		res, err := hetgraph.Run(app, g, opt)
		if err != nil && !errors.As(err, &abortErr) {
			return err
		}
		fmt.Printf("%s on %s (%v, vec=%v): %d iterations, sim %.6fs (gen %.6f, proc %.6f, upd %.6f), wall %.3fs\n",
			*appName, *device, opt.Scheme, opt.Vectorized, res.Iterations, res.SimSeconds,
			res.Phases.Generate, res.Phases.Process, res.Phases.Update, res.WallSeconds)
		repConfig = []hetgraph.RunReportConfig{reportConfigOf(0, opt, *faultPlan)}
		repDevices = []hetgraph.RunReportDevice{deviceReportOf(0, opt.Dev.Name, res)}
		repTotals = hetgraph.RunReportTotals{
			Iterations: res.Iterations, Converged: res.Converged,
			SimSeconds: res.SimSeconds, WallSeconds: res.WallSeconds,
		}
		if *verify && abortErr == nil {
			if err := verifyResult(*appName, app, g, *source, *iters); err != nil {
				return err
			}
		}
	case "both":
		specs, err := deviceGroupOf(*devices, *ranks)
		if err != nil {
			return err
		}
		assign, err := loadOrMakeAssign(*partPath, g, specs)
		if err != nil {
			return err
		}
		opts := groupOptions(opt, specs)
		res, err := hetgraph.RunHetero(app, g, assign, opts...)
		if err != nil && !errors.As(err, &abortErr) {
			return err
		}
		fmt.Printf("%s on %s: %d iterations, sim %.6fs (exec %.6f + comm %.6f), wall %.3fs\n",
			*appName, groupLabel(specs), res.Iterations, res.SimSeconds, res.ExecSeconds, res.CommSeconds, res.WallSeconds)
		for r, o := range opts {
			repConfig = append(repConfig, reportConfigOf(r, o, *faultPlan))
			repDevices = append(repDevices, deviceReportOf(r, o.Dev.Name, res.Dev[r]))
		}
		repTotals = hetgraph.RunReportTotals{
			Iterations: res.Iterations, Converged: res.Converged,
			SimSeconds: res.SimSeconds, WallSeconds: res.WallSeconds,
			ExecSeconds: res.ExecSeconds, CommSeconds: res.CommSeconds,
			Ranks: len(specs), FailedRanks: res.FailedRanks,
		}
		if res.Degraded {
			repTotals.Degraded = true
			repTotals.FailedRank = res.FailedRank
			repTotals.FailedSuperstep = res.FailedSuperstep
			repTotals.ResumedSuperstep = res.ResumedSuperstep
		}
		if res.DiskResumed {
			repTotals.DiskResumed = true
			repTotals.ResumedSuperstep = res.ResumedSuperstep
			repTotals.ResumedGeneration = res.ResumedGeneration
		}
		if res.Healed {
			repTotals.Healed = true
			repTotals.RejoinSuperstep = res.RejoinSuperstep
		}
		repTotals.DegradedSupersteps = res.DegradedSupersteps
		repTotals.SuspectRanks = res.SuspectRanks
		repTotals.SoftDegraded = res.SoftDegraded
		repTotals.SoftDegradeSuperstep = res.SoftDegradeSuperstep
		repTotals.Rehabilitated = res.Rehabilitated
		repTotals.RehabilitateSuperstep = res.RehabilitateSuperstep
		repTotals.CorruptDrops = res.Integrity.CorruptDrops
		repTotals.DupDrops = res.Integrity.DupDrops
		repTotals.StaleDrops = res.Integrity.StaleDrops
		repTotals.Retransmits = res.Integrity.Retransmits
		if res.Partitioned {
			repTotals.Partitioned = true
			repTotals.PartitionSuperstep = res.PartitionSuperstep
			repTotals.PartitionMajority = res.PartitionMajority
			repTotals.PartitionMinority = res.PartitionMinority
			healNote := ""
			if res.Healed {
				healNote = ", rejoined on heal"
			}
			fmt.Printf("partition: at superstep %d into majority %v | minority %v (minority fenced%s)\n",
				res.PartitionSuperstep, res.PartitionMajority, res.PartitionMinority, healNote)
		}
		if res.Integrity != (hetgraph.IntegrityStats{}) {
			fmt.Printf("retransmits: %d (corrupt drops %d, dup drops %d, stale drops %d)\n",
				res.Integrity.Retransmits, res.Integrity.CorruptDrops,
				res.Integrity.DupDrops, res.Integrity.StaleDrops)
		}
		if res.DiskResumed {
			fmt.Printf("resumed: cold-started from %s generation %d (superstep %d)\n",
				*ckDir, res.ResumedGeneration, res.ResumedSuperstep)
		}
		if res.Healed {
			fmt.Printf("healed: rank %d rejoined at superstep %d after %d degraded supersteps\n",
				res.FailedRank, res.RejoinSuperstep, res.DegradedSupersteps)
		}
		for _, r := range res.SoftDegraded {
			fmt.Printf("soft_degraded: rank %d demoted at superstep %d\n", r, res.SoftDegradeSuperstep)
		}
		for _, r := range res.Rehabilitated {
			fmt.Printf("rehabilitated: rank %d restored at superstep %d\n", r, res.RehabilitateSuperstep)
		}
		if res.Degraded {
			at := "" // a panic failure carries no exchange superstep
			if res.FailedSuperstep >= 0 {
				at = fmt.Sprintf(" at superstep %d", res.FailedSuperstep)
			}
			if len(specs) == 2 {
				fmt.Printf("degraded: rank %d failed%s; resumed single-device from checkpointed superstep %d (%d recovery iterations)\n",
					res.FailedRank, at, res.ResumedSuperstep, res.Recovery.Iterations)
			} else {
				fmt.Printf("degraded: rank %d failed%s; resumed over the surviving ranks from checkpointed superstep %d (%d recovery iterations)\n",
					res.FailedRank, at, res.ResumedSuperstep, res.Recovery.Iterations)
			}
		}
		if len(res.FailedRanks) > 0 {
			fmt.Printf("down at finish: ranks %v\n", res.FailedRanks)
		}
		if *verify && abortErr == nil {
			if err := verifyResult(*appName, app, g, *source, *iters); err != nil {
				return err
			}
		}
	default:
		return usagef("unknown -device %q", *device)
	}
	if rec != nil {
		f, err := os.Create(*traceCSV)
		if err != nil {
			return err
		}
		if err := rec.WriteCSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Println("trace summary:")
		fmt.Print(hetgraph.FormatTraceSummary(rec.Summarize()))
		fmt.Printf("timeline written to %s\n", *traceCSV)
	}
	if col != nil {
		rep := col.Report()
		rep.Tool = "hetgraph-run"
		rep.App = *appName
		rep.Graph = graphInfoOf(*graphPath, g)
		rep.Config = repConfig
		rep.Devices = repDevices
		rep.Totals = repTotals
		if err := finishReport(*report, rep); err != nil {
			return err
		}
	}
	if abortErr != nil {
		fmt.Printf("aborted: run stopped at superstep %d (partial results above)\n", abortErr.Superstep)
		return abortErr
	}
	return nil
}

// deviceGroupOf resolves -devices/-ranks into the device group for a
// heterogeneous run. An explicit -devices list wins; otherwise the group is
// the classic topology scaled out: one CPU plus ranks-1 MICs.
func deviceGroupOf(devices string, ranks int) ([]hetgraph.DeviceSpec, error) {
	if devices != "" {
		parts := strings.Split(devices, ",")
		specs := make([]hetgraph.DeviceSpec, 0, len(parts))
		for _, p := range parts {
			switch strings.ToLower(strings.TrimSpace(p)) {
			case "cpu":
				specs = append(specs, hetgraph.CPU())
			case "mic":
				specs = append(specs, hetgraph.MIC())
			default:
				return nil, usagef("bad -devices entry %q (want cpu or mic)", p)
			}
		}
		if len(specs) < 2 {
			return nil, usagef("-devices needs at least 2 entries, got %d", len(specs))
		}
		if ranks != 2 && ranks != len(specs) {
			return nil, usagef("-ranks %d disagrees with the %d entries of -devices", ranks, len(specs))
		}
		return specs, nil
	}
	if ranks < 2 {
		return nil, usagef("-ranks must be at least 2, got %d", ranks)
	}
	specs := make([]hetgraph.DeviceSpec, ranks)
	specs[0] = hetgraph.CPU()
	for r := 1; r < ranks; r++ {
		specs[r] = hetgraph.MIC()
	}
	return specs, nil
}

// groupLabel names the device group in summary lines ("CPU-MIC",
// "CPU-MIC-MIC-MIC", ...).
func groupLabel(specs []hetgraph.DeviceSpec) string {
	names := make([]string, len(specs))
	for i, s := range specs {
		names[i] = s.Name
	}
	return strings.Join(names, "-")
}

// groupOptions clones the base options once per rank. CPUs keep the locking
// scheme (the pipelined worker/mover split is a MIC optimization).
func groupOptions(base hetgraph.Options, specs []hetgraph.DeviceSpec) []hetgraph.Options {
	opts := make([]hetgraph.Options, len(specs))
	for r, spec := range specs {
		o := base
		o.Dev = spec
		if spec.Name == "CPU" {
			o.Scheme = hetgraph.SchemeLocking
		}
		opts[r] = o
	}
	return opts
}

// loadOrMakeAssign loads the -partition file when given; groups larger than
// the classic pair may omit it and get a continuous partition weighted by
// each rank's hardware thread count.
func loadOrMakeAssign(partPath string, g *hetgraph.Graph, specs []hetgraph.DeviceSpec) ([]int32, error) {
	if partPath != "" {
		return hetgraph.LoadPartition(partPath)
	}
	if len(specs) == 2 {
		return nil, usagef("-device both requires -partition")
	}
	assign, err := hetgraph.PartitionN(hetgraph.PartitionContinuous, g, hetgraph.DeviceWeights(specs...))
	if err != nil {
		return nil, err
	}
	fmt.Printf("partitioned: continuous over %d ranks by thread weight\n", len(specs))
	return assign, nil
}

// graphInfoOf fingerprints the loaded graph for the run report.
func graphInfoOf(path string, g *hetgraph.Graph) hetgraph.RunReportGraph {
	return hetgraph.RunReportGraph{
		Path:     path,
		Vertices: int64(g.NumVertices()),
		Edges:    g.NumEdges(),
		Weighted: g.Weighted(),
	}
}

// reportConfigOf echoes one rank's engine options into the report.
func reportConfigOf(rank int, o hetgraph.Options, faultPlan string) hetgraph.RunReportConfig {
	c := hetgraph.RunReportConfig{
		Rank:              rank,
		Device:            o.Dev.Name,
		Scheme:            o.Scheme.String(),
		Vectorized:        o.Vectorized,
		Threads:           o.Threads,
		K:                 o.K,
		Workers:           o.Workers,
		Movers:            o.Movers,
		GenBatchSize:      o.GenBatchSize,
		MaxIterations:     o.MaxIterations,
		CheckpointEvery:   o.CheckpointEvery,
		CheckpointDir:     o.CheckpointDir,
		CheckpointRetain:  o.CheckpointRetain,
		Resume:            o.Resume,
		Rejoin:            o.Rejoin,
		ExchangeTimeoutNS: int64(o.ExchangeTimeout),
		FaultPlan:         faultPlan,
	}
	if o.StragglerPolicy != hetgraph.StragglerOff || o.StragglerThreshold != 0 {
		c.StragglerThresholdNS = int64(o.StragglerThreshold)
		c.StragglerPolicy = o.StragglerPolicy.String()
	}
	return c
}

// deviceReportOf folds one device's Result into the report.
func deviceReportOf(rank int, dev string, res hetgraph.Result) hetgraph.RunReportDevice {
	return hetgraph.RunReportDevice{
		Rank:       rank,
		Device:     dev,
		Iterations: res.Iterations,
		Converged:  res.Converged,
		Counters:   res.Counters,
		SimPhases: hetgraph.RunReportPhases{
			Generate: res.Phases.Generate,
			Process:  res.Phases.Process,
			Update:   res.Phases.Update,
			Exchange: res.Phases.Exchange,
		},
		SimSeconds: res.SimSeconds,
	}
}

// finishReport seals the assembled report and, when a path was given,
// writes it out.
func finishReport(path string, rep *hetgraph.RunReport) error {
	rep.Seal()
	if path == "" {
		return nil
	}
	if err := hetgraph.WriteRunReport(path, rep); err != nil {
		return err
	}
	fmt.Printf("run report written to %s\n", path)
	return nil
}

// verifyResult re-runs the application through the sequential reference and
// compares, reporting PASS or failing the run.
func verifyResult(appName string, app hetgraph.AppF32, g *hetgraph.Graph, source, iters int) error {
	ok, detail := hetgraph.VerifyAgainstSequential(appName, app, g, hetgraph.VertexID(source), iters)
	if !ok {
		return fmt.Errorf("verify: FAIL — %s", detail)
	}
	fmt.Println("verify: PASS —", detail)
	return nil
}

func runSC(g *hetgraph.Graph, graphPath, device string, scheme hetgraph.Scheme, partPath, devices string, ranks, iters int, col *hetgraph.MetricsCollector, reportPath string, abort <-chan struct{}) error {
	if iters == 0 {
		iters = 5
	}
	app := hetgraph.NewSemiClustering(3, 4, 0.2)
	opt := hetgraph.Options{Scheme: scheme, MaxIterations: iters, Abort: abort}
	if col != nil {
		opt.Metrics = col
	}
	var (
		repConfig  []hetgraph.RunReportConfig
		repDevices []hetgraph.RunReportDevice
		repTotals  hetgraph.RunReportTotals
	)
	switch device {
	case "cpu", "mic":
		if device == "cpu" {
			opt.Dev = hetgraph.CPU()
		} else {
			opt.Dev = hetgraph.MIC()
		}
		res, err := hetgraph.RunSemiClustering(app, g, opt)
		if err != nil {
			return err
		}
		fmt.Printf("semicluster on %s: %d iterations, sim %.6fs, wall %.3fs\n",
			device, res.Iterations, res.SimSeconds, res.WallSeconds)
		repConfig = []hetgraph.RunReportConfig{reportConfigOf(0, opt, "")}
		repDevices = []hetgraph.RunReportDevice{deviceReportOf(0, opt.Dev.Name, res)}
		repTotals = hetgraph.RunReportTotals{
			Iterations: res.Iterations, Converged: res.Converged,
			SimSeconds: res.SimSeconds, WallSeconds: res.WallSeconds,
		}
	case "both":
		specs, err := deviceGroupOf(devices, ranks)
		if err != nil {
			return err
		}
		assign, err := loadOrMakeAssign(partPath, g, specs)
		if err != nil {
			return err
		}
		opts := groupOptions(opt, specs)
		res, err := hetgraph.RunSemiClusteringHetero(app, g, assign, opts...)
		if err != nil {
			return err
		}
		fmt.Printf("semicluster on %s: %d iterations, sim %.6fs (exec %.6f + comm %.6f), wall %.3fs\n",
			groupLabel(specs), res.Iterations, res.SimSeconds, res.ExecSeconds, res.CommSeconds, res.WallSeconds)
		for r, o := range opts {
			repConfig = append(repConfig, reportConfigOf(r, o, ""))
			repDevices = append(repDevices, deviceReportOf(r, o.Dev.Name, res.Dev[r]))
		}
		repTotals = hetgraph.RunReportTotals{
			Iterations: res.Iterations, Converged: res.Converged,
			SimSeconds: res.SimSeconds, WallSeconds: res.WallSeconds,
			ExecSeconds: res.ExecSeconds, CommSeconds: res.CommSeconds,
			Ranks: len(specs), FailedRanks: res.FailedRanks,
		}
	default:
		return usagef("unknown -device %q", device)
	}
	if col != nil {
		rep := col.Report()
		rep.Tool = "hetgraph-run"
		rep.App = "semicluster"
		rep.Graph = graphInfoOf(graphPath, g)
		rep.Config = repConfig
		rep.Devices = repDevices
		rep.Totals = repTotals
		if err := finishReport(reportPath, rep); err != nil {
			return err
		}
	}
	return nil
}
