// Command hetgraph-run executes one of the five evaluated applications on a
// graph file, on a single modeled device or heterogeneously across CPU and
// MIC with a partition file.
//
// Usage:
//
//	hetgraph-run -graph pokec.adj -app bfs -device mic -scheme lock
//	hetgraph-run -graph pokecw.adj -app sssp -device both -partition pokec.part
//	hetgraph-run -graph pokec.adj -app pagerank -iters 10 -device cpu -baseline omp
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"hetgraph"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hetgraph-run: ")
	var (
		graphPath = flag.String("graph", "", "input graph file (required)")
		appName   = flag.String("app", "pagerank", "application: pagerank | bfs | sssp | toposort | semicluster")
		device    = flag.String("device", "mic", "device: cpu | mic | both")
		scheme    = flag.String("scheme", "pipe", "message generation scheme: lock | pipe")
		baseline  = flag.String("baseline", "", "run a baseline instead: omp")
		partPath  = flag.String("partition", "", "partition file for -device both")
		source    = flag.Int("source", 0, "source vertex for bfs/sssp")
		iters     = flag.Int("iters", 0, "iteration bound (0 = converge; pagerank default 10)")
		novec     = flag.Bool("novec", false, "disable SIMD message reduction")
		genBatch  = flag.Int("genbatch", 0, "pipelined handoff batch size (0/1 = per-element; try 64)")
		traceCSV  = flag.String("trace", "", "write a per-superstep phase timeline CSV to this path")
		verify    = flag.Bool("verify", false, "check the result against the sequential reference")
		ckEvery   = flag.Int("checkpoint-every", 0, "checkpoint vertex state every N supersteps (0 = off; -device both)")
		exTimeout = flag.Duration("exchange-timeout", 0, "deadline per cross-device exchange round (0 = unbounded)")
		faultPlan = flag.String("fault-plan", "", `inject faults, e.g. "rank1:drop@3;rank0:delay@2:5ms" (see docs/robustness.md)`)
	)
	flag.Parse()
	if *graphPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	g, err := hetgraph.LoadGraph(*graphPath)
	if err != nil {
		log.Fatal(err)
	}
	if *appName == "pagerank" && *iters == 0 {
		*iters = 10
	}

	schemeOf := func(s string) hetgraph.Scheme {
		if s == "lock" {
			return hetgraph.SchemeLocking
		}
		return hetgraph.SchemePipelined
	}
	devOf := func(s string) hetgraph.DeviceSpec {
		if s == "cpu" {
			return hetgraph.CPU()
		}
		return hetgraph.MIC()
	}

	if *appName == "semicluster" {
		runSC(g, *device, schemeOf(*scheme), *partPath, *iters)
		return
	}

	var app hetgraph.AppF32
	switch *appName {
	case "pagerank":
		app = hetgraph.NewPageRank()
	case "bfs":
		app = hetgraph.NewBFS(hetgraph.VertexID(*source))
	case "sssp":
		app = hetgraph.NewSSSP(hetgraph.VertexID(*source))
	case "toposort":
		app = hetgraph.NewTopoSort()
	case "cc":
		app = hetgraph.NewConnectedComponents()
	default:
		log.Fatalf("unknown -app %q", *appName)
	}

	if *baseline == "omp" {
		res, err := hetgraph.RunOMP(app, g, devOf(*device), 0, *iters)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s OMP on %s: %d iterations, sim %.6fs, wall %.3fs\n",
			*appName, *device, res.Iterations, res.SimSeconds, res.WallSeconds)
		return
	}

	var rec *hetgraph.TraceRecorder
	if *traceCSV != "" {
		rec = hetgraph.NewTraceRecorder()
	}
	var inj *hetgraph.FaultInjector
	if *faultPlan != "" {
		plan, err := hetgraph.ParseFaultPlan(*faultPlan)
		if err != nil {
			log.Fatal(err)
		}
		if inj, err = hetgraph.NewFaultInjector(plan); err != nil {
			log.Fatal(err)
		}
	}
	opt := hetgraph.Options{
		Scheme:          schemeOf(*scheme),
		Vectorized:      !*novec,
		MaxIterations:   *iters,
		GenBatchSize:    *genBatch,
		Trace:           rec,
		CheckpointEvery: *ckEvery,
		ExchangeTimeout: *exTimeout,
		Fault:           inj,
	}
	switch *device {
	case "cpu", "mic":
		opt.Dev = devOf(*device)
		res, err := hetgraph.Run(app, g, opt)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s on %s (%v, vec=%v): %d iterations, sim %.6fs (gen %.6f, proc %.6f, upd %.6f), wall %.3fs\n",
			*appName, *device, opt.Scheme, opt.Vectorized, res.Iterations, res.SimSeconds,
			res.Phases.Generate, res.Phases.Process, res.Phases.Update, res.WallSeconds)
		if *verify {
			verifyResult(*appName, app, g, *source, *iters)
		}
	case "both":
		if *partPath == "" {
			log.Fatal("-device both requires -partition")
		}
		assign, err := hetgraph.LoadPartition(*partPath)
		if err != nil {
			log.Fatal(err)
		}
		optCPU := opt
		optCPU.Dev = hetgraph.CPU()
		optCPU.Scheme = hetgraph.SchemeLocking
		optMIC := opt
		optMIC.Dev = hetgraph.MIC()
		res, err := hetgraph.RunHetero(app, g, assign, optCPU, optMIC)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s on CPU-MIC: %d iterations, sim %.6fs (exec %.6f + comm %.6f), wall %.3fs\n",
			*appName, res.Iterations, res.SimSeconds, res.ExecSeconds, res.CommSeconds, res.WallSeconds)
		if res.Degraded {
			at := "" // a panic failure carries no exchange superstep
			if res.FailedSuperstep >= 0 {
				at = fmt.Sprintf(" at superstep %d", res.FailedSuperstep)
			}
			fmt.Printf("degraded: rank %d failed%s; resumed single-device from checkpointed superstep %d (%d recovery iterations)\n",
				res.FailedRank, at, res.ResumedSuperstep, res.Recovery.Iterations)
		}
		if *verify {
			verifyResult(*appName, app, g, *source, *iters)
		}
	default:
		log.Fatalf("unknown -device %q", *device)
	}
	if rec != nil {
		f, err := os.Create(*traceCSV)
		if err != nil {
			log.Fatal(err)
		}
		if err := rec.WriteCSV(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Println("trace summary:")
		fmt.Print(hetgraph.FormatTraceSummary(rec.Summarize()))
		fmt.Printf("timeline written to %s\n", *traceCSV)
	}
}

// verifyResult re-runs the application through the sequential reference and
// compares, reporting PASS/FAIL.
func verifyResult(appName string, app hetgraph.AppF32, g *hetgraph.Graph, source, iters int) {
	ok, detail := hetgraph.VerifyAgainstSequential(appName, app, g, hetgraph.VertexID(source), iters)
	if ok {
		fmt.Println("verify: PASS —", detail)
	} else {
		log.Fatalf("verify: FAIL — %s", detail)
	}
}

func runSC(g *hetgraph.Graph, device string, scheme hetgraph.Scheme, partPath string, iters int) {
	if iters == 0 {
		iters = 5
	}
	app := hetgraph.NewSemiClustering(3, 4, 0.2)
	opt := hetgraph.Options{Scheme: scheme, MaxIterations: iters}
	switch device {
	case "cpu", "mic":
		if device == "cpu" {
			opt.Dev = hetgraph.CPU()
		} else {
			opt.Dev = hetgraph.MIC()
		}
		res, err := hetgraph.RunSemiClustering(app, g, opt)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("semicluster on %s: %d iterations, sim %.6fs, wall %.3fs\n",
			device, res.Iterations, res.SimSeconds, res.WallSeconds)
	case "both":
		if partPath == "" {
			log.Fatal("-device both requires -partition")
		}
		assign, err := hetgraph.LoadPartition(partPath)
		if err != nil {
			log.Fatal(err)
		}
		optCPU := opt
		optCPU.Dev = hetgraph.CPU()
		optCPU.Scheme = hetgraph.SchemeLocking
		optMIC := opt
		optMIC.Dev = hetgraph.MIC()
		res, err := hetgraph.RunSemiClusteringHetero(app, g, assign, optCPU, optMIC)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("semicluster on CPU-MIC: %d iterations, sim %.6fs (exec %.6f + comm %.6f), wall %.3fs\n",
			res.Iterations, res.SimSeconds, res.ExecSeconds, res.CommSeconds, res.WallSeconds)
	default:
		log.Fatalf("unknown -device %q", device)
	}
}
