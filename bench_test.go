// Benchmarks regenerating the paper's evaluation artifacts (one benchmark
// per figure/table series, on small-scale workloads so `go test -bench=.`
// terminates quickly) plus microbenchmarks of the runtime's building blocks.
//
// Every figure benchmark reports the simulated device seconds per run as
// "sim-ms" via b.ReportMetric; wall time (ns/op) reflects this host, not the
// modeled node. The full-scale harness is `cmd/hetgraph-bench`.
package hetgraph_test

import (
	"math"
	"sync"
	"testing"

	"hetgraph"
	"hetgraph/internal/bench"
	"hetgraph/internal/core"
	"hetgraph/internal/csb"

	"hetgraph/internal/machine"
	"hetgraph/internal/metis"
	"hetgraph/internal/partition"
	"hetgraph/internal/queue"
	"hetgraph/internal/vec"
)

var (
	loadOnce  sync.Once
	workloads bench.Workloads
	loadErr   error
)

func benchWorkloads(b *testing.B) bench.Workloads {
	b.Helper()
	loadOnce.Do(func() {
		workloads, loadErr = bench.Load(bench.ScaleSmall())
	})
	if loadErr != nil {
		b.Fatal(loadErr)
	}
	return workloads
}

func benchSpec(b *testing.B, name string) bench.AppSpec {
	b.Helper()
	spec, err := bench.SpecByName(bench.Specs(benchWorkloads(b)), name)
	if err != nil {
		b.Fatal(err)
	}
	return spec
}

// benchFig5 runs the seven configurations of one Figure-5 panel as
// sub-benchmarks.
func benchFig5(b *testing.B, app string) {
	spec := benchSpec(b, app)
	cpu, mic := machine.CPU(), machine.MIC()
	run := func(name string, f func() (float64, error)) {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sim, err := f()
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(sim*1e3, "sim-ms")
			}
		})
	}
	frame := func(dev machine.DeviceSpec, scheme core.Scheme) func() (float64, error) {
		return func() (float64, error) {
			res, err := spec.RunFramework(core.Options{Dev: dev, Scheme: scheme, Vectorized: true})
			return res.SimSeconds, err
		}
	}
	run("CPU_OMP", func() (float64, error) { r, err := spec.RunOMP(cpu, 0); return r.SimSeconds, err })
	run("CPU_Lock", frame(cpu, core.SchemeLocking))
	run("CPU_Pipe", frame(cpu, core.SchemePipelined))
	run("MIC_OMP", func() (float64, error) { r, err := spec.RunOMP(mic, 0); return r.SimSeconds, err })
	run("MIC_Lock", frame(mic, core.SchemeLocking))
	run("MIC_Pipe", frame(mic, core.SchemePipelined))
	run("CPU_MIC", func() (float64, error) {
		assign, err := spec.HeteroAssign(spec.HeteroMethod)
		if err != nil {
			return 0, err
		}
		o0, o1 := spec.HeteroOptions()
		res, err := spec.RunHetero(assign, o0, o1)
		return res.SimSeconds, err
	})
}

func BenchmarkFig5aPageRank(b *testing.B) { benchFig5(b, "PageRank") }
func BenchmarkFig5bBFS(b *testing.B)      { benchFig5(b, "BFS") }
func BenchmarkFig5cSC(b *testing.B)       { benchFig5(b, "SC") }
func BenchmarkFig5dSSSP(b *testing.B)     { benchFig5(b, "SSSP") }
func BenchmarkFig5eTopoSort(b *testing.B) { benchFig5(b, "TopoSort") }

// BenchmarkFig5fVectorization reports the message-processing sub-step time
// with and without SIMD reduction for the three reducible applications.
func BenchmarkFig5fVectorization(b *testing.B) {
	for _, app := range []string{"PageRank", "SSSP", "TopoSort"} {
		spec := benchSpec(b, app)
		for _, dev := range []machine.DeviceSpec{machine.CPU(), machine.MIC()} {
			for _, vecOn := range []bool{false, true} {
				name := app + "/" + dev.Name + "/novec"
				if vecOn {
					name = app + "/" + dev.Name + "/vec"
				}
				scheme := core.SchemeLocking
				if dev.Name == "MIC" {
					scheme = spec.MICScheme
				}
				b.Run(name, func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						res, err := spec.RunFramework(core.Options{Dev: dev, Scheme: scheme, Vectorized: vecOn})
						if err != nil {
							b.Fatal(err)
						}
						b.ReportMetric(res.Phases.Process*1e3, "msgproc-sim-ms")
						b.ReportMetric(res.SimSeconds*1e3, "sim-ms")
					}
				})
			}
		}
	}
}

// BenchmarkFig6Partitioning reports heterogeneous time under the three
// partitioning schemes per application.
func BenchmarkFig6Partitioning(b *testing.B) {
	for _, app := range []string{"PageRank", "BFS", "SC", "SSSP", "TopoSort"} {
		spec := benchSpec(b, app)
		for _, method := range []partition.Method{partition.MethodContinuous, partition.MethodRoundRobin, partition.MethodHybrid} {
			b.Run(app+"/"+method.String(), func(b *testing.B) {
				assign, err := spec.HeteroAssign(method)
				if err != nil {
					b.Fatal(err)
				}
				o0, o1 := spec.HeteroOptions()
				for i := 0; i < b.N; i++ {
					res, err := spec.RunHetero(assign, o0, o1)
					if err != nil {
						b.Fatal(err)
					}
					b.ReportMetric(res.ExecSeconds*1e3, "exec-sim-ms")
					b.ReportMetric(res.CommSeconds*1e3, "comm-sim-ms")
				}
			})
		}
	}
}

// BenchmarkTable2 reports the sequential baselines and parallel runs whose
// ratios form Table II.
func BenchmarkTable2(b *testing.B) {
	for _, app := range []string{"PageRank", "BFS", "SC", "SSSP", "TopoSort"} {
		spec := benchSpec(b, app)
		b.Run(app+"/CPUSeq", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sim, _, err := spec.RunSeq(machine.CPU())
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(sim*1e3, "sim-ms")
			}
		})
		b.Run(app+"/MICSeq", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sim, _, err := spec.RunSeq(machine.MIC())
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(sim*1e3, "sim-ms")
			}
		})
		b.Run(app+"/CPUMulti", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := spec.RunFramework(core.Options{Dev: machine.CPU(), Scheme: core.SchemeLocking, Vectorized: true})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.SimSeconds*1e3, "sim-ms")
			}
		})
		b.Run(app+"/MICMany", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := spec.RunFramework(core.Options{Dev: machine.MIC(), Scheme: spec.MICScheme, Vectorized: true})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.SimSeconds*1e3, "sim-ms")
			}
		})
	}
}

// Ablation benchmarks for the design choices DESIGN.md calls out.

func BenchmarkAblationCSBMode(b *testing.B) {
	spec := benchSpec(b, "TopoSort")
	for _, mode := range []csb.InsertMode{csb.OneToOne, csb.Dynamic} {
		b.Run(mode.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := spec.RunFramework(core.Options{
					Dev: machine.MIC(), Scheme: spec.MICScheme, Vectorized: true, CSBMode: mode,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.SimSeconds*1e3, "sim-ms")
				b.ReportMetric(float64(res.Counters.VecRows), "vec-rows")
			}
		})
	}
}

func BenchmarkAblationGroupFactorK(b *testing.B) {
	spec := benchSpec(b, "PageRank")
	for _, k := range []int{1, 2, 4} {
		b.Run("k="+string(rune('0'+k)), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := spec.RunFramework(core.Options{
					Dev: machine.MIC(), Scheme: spec.MICScheme, Vectorized: true, K: k,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.SimSeconds*1e3, "sim-ms")
			}
		})
	}
}

func BenchmarkAblationMoverSplit(b *testing.B) {
	spec := benchSpec(b, "TopoSort")
	total := machine.MIC().Threads()
	for _, movers := range []int{20, 60, 120} {
		name := map[int]string{20: "220+20", 60: "180+60", 120: "120+120"}[movers]
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := spec.RunFramework(core.Options{
					Dev: machine.MIC(), Scheme: core.SchemePipelined, Vectorized: true,
					Workers: total - movers, Movers: movers,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.SimSeconds*1e3, "sim-ms")
			}
		})
	}
}

func BenchmarkAblationMetisBlocks(b *testing.B) {
	spec := benchSpec(b, "PageRank")
	for _, blocks := range []int{4, 16, 64} {
		b.Run("blocks="+string(rune('0'+blocks/10))+string(rune('0'+blocks%10)), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				assign, err := partition.Hybrid(spec.Graph, spec.Ratio, blocks, metis.DefaultOptions())
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(partition.CrossEdges(spec.Graph, assign)), "cross-edges")
			}
		})
	}
}

// Microbenchmarks of the runtime's building blocks.

func BenchmarkCSBInsert(b *testing.B) {
	g := benchWorkloads(b).Pokec
	buf, err := csb.Build(g, csb.Config{Width: vec.WidthMIC, K: 2, Identity: 0, Mode: csb.Dynamic})
	if err != nil {
		b.Fatal(err)
	}
	// Insert along the real edge list (each destination receives exactly
	// its in-degree), resetting the buffer between passes.
	dsts := g.Edges
	b.ResetTimer()
	pos := 0
	for range b.N {
		if pos == len(dsts) {
			b.StopTimer()
			buf.Reset()
			pos = 0
			b.StartTimer()
		}
		buf.Insert(dsts[pos], 1)
		pos++
	}
}

func BenchmarkSPSCQueue(b *testing.B) {
	q, err := queue.NewSPSC[int64](1024)
	if err != nil {
		b.Fatal(err)
	}
	b.RunParallel(func(pb *testing.PB) {
		// Alternate push/pop from one goroutine at a time is not SPSC;
		// keep it single-threaded per op pair instead.
		for pb.Next() {
			q.TryPush(1)
			q.TryPop()
		}
	})
}

func BenchmarkVecReduceMinMIC(b *testing.B) {
	arr := vec.MustArrayF32(vec.WidthMIC, 64)
	for r := 0; r < 64; r++ {
		for l := 0; l < 16; l++ {
			arr.Set(r, l, float32(r*16+l))
		}
	}
	b.ResetTimer()
	for range b.N {
		arr.ReduceMin(64)
	}
}

func BenchmarkMetisPartition(b *testing.B) {
	g := benchWorkloads(b).Pokec
	for range b.N {
		if _, err := metis.Partition(g, 16, metis.DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPublicAPIQuickstart exercises the facade end to end (and guards
// the public API against bit-rot).
func BenchmarkPublicAPIQuickstart(b *testing.B) {
	g, err := hetgraph.GeneratePowerLaw(hetgraph.DefaultPowerLaw(5000))
	if err != nil {
		b.Fatal(err)
	}
	g, err = hetgraph.AddRandomWeights(g, 0, 10, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for range b.N {
		app := hetgraph.NewSSSP(0)
		res, err := hetgraph.Run(app, g, hetgraph.Options{
			Dev: hetgraph.MIC(), Scheme: hetgraph.SchemePipelined, Vectorized: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Converged || math.IsInf(float64(app.Dist[1]), 1) && g.OutDegree(0) > 0 {
			b.Fatal("unexpected result")
		}
		b.ReportMetric(res.SimSeconds*1e3, "sim-ms")
	}
}
