module hetgraph

go 1.22
