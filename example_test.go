package hetgraph_test

import (
	"fmt"

	"hetgraph"
)

// Example_quickstart runs single-source shortest paths on a generated
// Pokec-like power-law graph, on the simulated Xeon Phi with pipelined
// generation and SIMD message reduction, then checks the distances
// against an independent Dijkstra implementation.
func Example_quickstart() {
	g, err := hetgraph.GeneratePowerLaw(hetgraph.DefaultPowerLaw(10000))
	if err != nil {
		panic(err)
	}
	wg, err := hetgraph.AddRandomWeights(g, 0, 10, 1)
	if err != nil {
		panic(err)
	}

	app := hetgraph.NewSSSP(0)
	res, err := hetgraph.Run(app, wg, hetgraph.Options{
		Dev:        hetgraph.MIC(),
		Scheme:     hetgraph.SchemePipelined,
		Vectorized: true,
	})
	if err != nil {
		panic(err)
	}

	ok, detail := hetgraph.VerifyAgainstSequential("sssp", app, wg, 0, int(res.Iterations))
	fmt.Println("converged:", res.Converged)
	fmt.Println("verified:", ok, "-", detail)
	// Output:
	// converged: true
	// verified: true - sssp distances match Dijkstra on 10000 vertices
}

// ExampleRunF32Hetero_fourRanks runs PageRank over a four-rank device group
// — one CPU plus three MICs declared through the Options.Devices form —
// partitioning the graph in proportion to each rank's hardware threads, and
// checks the result against the sequential power-iteration oracle.
func ExampleRunF32Hetero_fourRanks() {
	g, err := hetgraph.GeneratePowerLaw(hetgraph.DefaultPowerLaw(4000))
	if err != nil {
		panic(err)
	}

	group := []hetgraph.DeviceSpec{
		hetgraph.CPU(), hetgraph.MIC(), hetgraph.MIC(), hetgraph.MIC(),
	}
	assign, err := hetgraph.PartitionN(hetgraph.PartitionContinuous, g, hetgraph.DeviceWeights(group...))
	if err != nil {
		panic(err)
	}

	app := hetgraph.NewPageRank()
	res, err := hetgraph.RunF32Hetero(app, g, assign, hetgraph.Options{
		Devices:       group,
		Scheme:        hetgraph.SchemePipelined,
		Vectorized:    true,
		MaxIterations: 10,
	})
	if err != nil {
		panic(err)
	}

	ok, detail := hetgraph.VerifyAgainstSequential("pagerank", app, g, 0, int(res.Iterations))
	fmt.Println("ranks:", len(res.Dev))
	fmt.Println("iterations:", res.Iterations)
	fmt.Println("verified:", ok, "-", detail)
	// Output:
	// ranks: 4
	// iterations: 10
	// verified: true - pagerank matches 10 power iterations (tol 1e-3)
}

// ExampleRun_pipelined contrasts the pipelined scheme's per-element SPSC
// handoff (the default, GenBatchSize 1) with the batched handoff
// (DefaultGenBatch): the same messages flow, but batching publishes the
// queue cursors once per batch instead of once per message. See
// docs/pipeline.md.
func ExampleRun_pipelined() {
	g, err := hetgraph.GeneratePowerLaw(hetgraph.DefaultPowerLaw(4000))
	if err != nil {
		panic(err)
	}

	perElem := hetgraph.NewBFS(0)
	pres, err := hetgraph.Run(perElem, g, hetgraph.Options{
		Dev: hetgraph.MIC(), Scheme: hetgraph.SchemePipelined, Vectorized: true,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("per-element queue ops per message:",
		pres.Counters.QueueOps/pres.Counters.Messages)

	batched := hetgraph.NewBFS(0)
	bres, err := hetgraph.Run(batched, g, hetgraph.Options{
		Dev: hetgraph.MIC(), Scheme: hetgraph.SchemePipelined, Vectorized: true,
		GenBatchSize: hetgraph.DefaultGenBatch,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("same messages generated:", bres.Counters.Messages == pres.Counters.Messages)
	fmt.Println("batched publications below per-element ops:",
		bres.Counters.QueueBatchOps < pres.Counters.QueueOps)
	fmt.Println("batched generation simulated faster:",
		bres.Phases.Generate < pres.Phases.Generate)
	// Output:
	// per-element queue ops per message: 2
	// same messages generated: true
	// batched publications below per-element ops: true
	// batched generation simulated faster: true
}
